#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/tree_template.hpp"
#include "gf/gf256.hpp"
#include "gf/gfsmall.hpp"
#include "partition/multilevel.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/rank_pool.hpp"
#include "runtime/trace.hpp"
#include "util/log.hpp"

namespace midas::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

Clock::duration to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Run `fn` with the field instance matching `l` bits. GF(2^8) has the
/// table-driven implementation; every other width uses GFSmall.
template <typename Fn>
decltype(auto) with_field(int l, Fn&& fn) {
  if (l == 8) return fn(gf::GF256{});
  return fn(gf::GFSmall(l));
}

core::MidasOptions engine_options(const QuerySpec& spec) {
  core::MidasOptions opt;
  opt.k = spec.k;
  opt.epsilon = spec.epsilon;
  opt.seed = spec.seed;
  opt.n_ranks = spec.n_ranks;
  opt.n1 = spec.n1;
  opt.n2 = spec.n2;
  opt.max_rounds = spec.max_rounds;
  opt.early_exit = spec.early_exit;
  opt.kernel = spec.kernel;
  return opt;
}

std::string views_key(const QuerySpec& spec) {
  return "views/" + spec.graph + "/n1=" + std::to_string(spec.n1);
}

std::string rand_key(const QuerySpec& spec) {
  return "rand/" + spec.graph + "/n1=" + std::to_string(spec.n1) +
         "/l=" + std::to_string(spec.field_bits) +
         "/seed=" + std::to_string(spec.seed) +
         "/k=" + std::to_string(spec.k) +
         "/rounds=" + std::to_string(spec.rounds());
}

std::size_t lane_index(Lane l) noexcept {
  return l == Lane::kInteractive ? 0 : 1;
}

/// Tracer lane block per worker: worker w's SPMD ranks trace on lanes
/// [w * stride, w * stride + n_ranks) and the worker thread itself on the
/// block's last lane, so a Chrome trace shows one band per worker.
/// Standalone engine runs keep lane_base 0 — their lane layout (and the
/// CI assertions on it) are unchanged.
constexpr int kWorkerLaneStride = 64;

}  // namespace

CoreBudget resolve_core_budget(int workers, int cores, int ranks_hint) {
  CoreBudget b;
  if (cores > 0) {
    b.cores = cores;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    b.cores = hw > 0 ? static_cast<int>(hw) : 1;
  }
  const int hint = std::max(1, ranks_hint);
  // Auto mode targets ~one resident rank thread per core: more workers
  // than cores/ranks just time-slice (EXPERIMENTS.md measured 4 workers x
  // 2 ranks on one core at 3.6x the per-query rank time of 1 worker).
  // Capped at 16 so a huge machine still leaves cores for builds/audits.
  b.workers = workers > 0 ? workers
                          : std::clamp(b.cores / hint, 1, 16);
  b.ranks_per_worker = std::max(hint, b.cores / b.workers);
  return b;
}

double estimate_query_cost(const QuerySpec& q, std::uint64_t vertices,
                           std::uint64_t edges) {
  const runtime::CostModel m{};
  const double iters = std::ldexp(1.0, std::clamp(q.k, 1, 30));  // 2^k
  const double rounds = static_cast<double>(q.rounds());
  const double n1 = static_cast<double>(std::max(1, q.n1));
  const double part_edges = static_cast<double>(edges) / n1 + 1.0;
  const double part_verts = static_cast<double>(vertices) / n1 + 1.0;
  // Bit-sliced kernels pack 64 iterations per plane word across
  // field_bits planes; the scalar kernel pays one field op per iteration.
  const bool scalar = q.kernel == core::Kernel::kScalar;
  const double lane_words =
      scalar ? iters : (iters / 64.0 + 1.0) * static_cast<double>(q.field_bits);
  const double compute =
      m.compute_cost(static_cast<std::uint64_t>(
          rounds * q.k * (part_edges + part_verts) * lane_words));
  // One batched halo exchange per (round, k-level, phase).
  const double phases = iters / static_cast<double>(std::max<std::uint32_t>(
                                    1, q.n2)) + 1.0;
  const double halo_bytes =
      part_verts * (scalar ? 1.0 : q.field_bits / 8.0 + 1.0);
  const double comm =
      rounds * q.k * phases *
      m.message_cost(static_cast<std::uint64_t>(halo_bytes));
  return compute + comm;
}

DetectionService::DetectionService(ServiceOptions opt)
    : opt_(std::move(opt)),
      chaos_(opt_.chaos),
      cache_(opt_.cache_capacity, opt_.cache_enabled, opt_.cache_shards),
      breaker_(opt_.breaker) {
  if (opt_.workers < 0)
    throw std::invalid_argument("workers must be >= 0 (0 = auto)");
  if (opt_.cores < 0)
    throw std::invalid_argument("cores must be >= 0 (0 = hardware)");
  if (opt_.ranks_hint < 1)
    throw std::invalid_argument("ranks_hint must be >= 1");
  if (opt_.queue_capacity < 1)
    throw std::invalid_argument("service needs queue_capacity >= 1");
  if (opt_.supervisor_poll_s <= 0.0)
    throw std::invalid_argument("supervisor_poll_s must be > 0");
  budget_ = resolve_core_budget(opt_.workers, opt_.cores, opt_.ranks_hint);
  shards_.resize(static_cast<std::size_t>(budget_.workers));
  shard_gauges_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shard_gauges_.push_back(&runtime::tracer().metrics().gauge(
        "service.shard_load." + std::to_string(i)));

  // -- integrity wiring (service/integrity.hpp) ---------------------------
  cache_.set_verify(opt_.verify, opt_.verify_sample_period);
  cache_.set_on_corruption([this](const std::string& key) {
    // Keys are "views/<graph>/..." or "rand/<graph>/...": the corruption
    // feeds the graph's breaker like a build failure — repeated silent
    // corruption of one graph's artifacts trips it open.
    const auto a = key.find('/');
    const auto b = key.find('/', a + 1);
    const std::string graph_name =
        (a == std::string::npos || b == std::string::npos)
            ? key
            : key.substr(a + 1, b - a - 1);
    log_warn("artifact checksum mismatch quarantined key '", key, "'");
    note_build_failure(graph_name);
  });
  if (chaos_.armed() && opt_.chaos.artifact_flip_p > 0.0) {
    cache_.set_chaos_flip_hook(
        [this](const std::string& key, std::uint64_t& pick) {
          std::uint64_t idx = 0;
          {
            std::lock_guard lock(m_);
            idx = flip_attempts_[key]++;
          }
          if (!chaos_.should_flip_artifact(key, idx)) return false;
          pick = chaos_.artifact_flip_pick(key, idx);
          {
            std::lock_guard lock(m_);
            ++chaos_artifact_flips_;
          }
          MIDAS_TRACE_COUNT("service.chaos_artifact_flips", 1);
          return true;
        });
  }
  if (opt_.audit_rate > 0.0) {
    auditor_ = std::make_unique<AuditSampler>(
        AuditSampler::Options{opt_.audit_rate, opt_.audit_seed},
        // Probes run the normal execute path (cached artifacts) at an
        // attempt index past max_faulty_attempts, so chaos never faults
        // the audit itself.
        [this](const QuerySpec& s) {
          return execute(s, query_fingerprint(s),
                         opt_.chaos.max_faulty_attempts, ExecContext{});
        },
        [this](const std::string& g) { quarantine_graph(g); },
        /*on_missed_yes=*/nullptr);
  }

  {
    std::lock_guard lock(m_);
    workers_.reserve(static_cast<std::size_t>(budget_.workers) * 2);
    for (int i = 0; i < budget_.workers; ++i) {
      workers_.emplace_back([this, i] { worker_main(i); });
      ++workers_alive_;
    }
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

DetectionService::~DetectionService() {
  // Stop the audit sampler first: its probes call execute(), which needs
  // the cache, graphs, and chaos state all still alive.
  auditor_.reset();
  std::vector<std::shared_ptr<Ticket>> orphans;
  {
    std::lock_guard lock(m_);
    stopping_ = true;
    for (WorkerShard& s : shards_) {
      for (auto& t : s.interactive) orphans.push_back(std::move(t));
      s.interactive.clear();
      for (auto& t : s.batch) orphans.push_back(std::move(t));
      s.batch.clear();
      s.load = 0.0;
    }
    for (auto& t : hedge_) orphans.push_back(std::move(t));
    hedge_.clear();
    for (auto& e : retry_heap_) orphans.push_back(std::move(e.ticket));
    retry_heap_.clear();
  }
  work_cv_.notify_all();
  sup_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  // workers_ can grow while self-healing spawns replacements, but never
  // after stopping_ is set (worker_main checks it under m_), so indexed
  // iteration with a re-checked bound joins every thread exactly once.
  for (std::size_t i = 0;; ++i) {
    std::thread t;
    {
      std::lock_guard lock(m_);
      if (i >= workers_.size()) break;
      t = std::move(workers_[i]);
    }
    if (t.joinable()) t.join();
  }
  // Settled after every thread is gone: no attempt can race these promises.
  for (auto& t : orphans) {
    if (!t || t->settled) continue;
    t->settled = true;
    t->promise.set_exception(std::make_exception_ptr(ServiceShutdownError()));
  }
}

void DetectionService::add_graph(const std::string& name, graph::Graph g) {
  auto ptr = std::make_shared<const graph::Graph>(std::move(g));
  std::lock_guard lock(graphs_m_);
  graphs_[name] = std::move(ptr);
}

std::shared_ptr<const graph::Graph> DetectionService::graph(
    const std::string& name) const {
  std::lock_guard lock(graphs_m_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

void DetectionService::validate(const QuerySpec& spec,
                                const graph::Graph& g) const {
  if (spec.k < 1) throw QueryValidationError("k", "must be >= 1");
  if (spec.field_bits < 2 || spec.field_bits > 16)
    throw QueryValidationError("field_bits", "must be in [2, 16]");
  // epsilon feeds rounds_for_epsilon (log of its reciprocal) even when
  // max_rounds overrides the round count — reject the nonsense up front.
  if (!(spec.epsilon > 0.0) || !(spec.epsilon < 1.0))
    throw QueryValidationError("epsilon", "must be in (0, 1)");
  if (spec.max_rounds < 0)
    throw QueryValidationError("max_rounds", "must be >= 0");
  if (spec.n1 < 1 || spec.n_ranks < spec.n1 || spec.n_ranks % spec.n1 != 0)
    throw QueryValidationError("n1", "N1 must divide N");
  if (spec.n2 < 1) throw QueryValidationError("n2", "N2 must be >= 1");
  if (spec.type == QueryType::kTree &&
      spec.tree_edges.size() + 1 != static_cast<std::size_t>(spec.k))
    throw QueryValidationError("tree_edges",
                               "tree template needs exactly k-1 edges");
  if (spec.type == QueryType::kScan &&
      spec.weights.size() != static_cast<std::size_t>(g.num_vertices()))
    throw QueryValidationError("weights",
                               "scan needs one weight per graph vertex");
  if (spec.type == QueryType::kMotif) {
    if (spec.colors.size() != static_cast<std::size_t>(g.num_vertices()))
      throw QueryValidationError("colors",
                                 "motif needs one color per graph vertex");
    if (spec.motif.empty())
      throw QueryValidationError("motif", "motif multiset must be nonempty");
    if (spec.motif.size() != static_cast<std::size_t>(spec.k))
      throw QueryValidationError("motif",
                                 "k must equal the motif multiset size");
    // A queried color no vertex carries makes the answer a static "no" —
    // that is a client bug (wrong color ids), not a detection result.
    for (std::uint32_t c : spec.motif) {
      bool present = false;
      for (std::uint32_t x : spec.colors)
        if (x == c) {
          present = true;
          break;
        }
      if (!present)
        throw QueryValidationError("motif",
                                   "motif color " + std::to_string(c) +
                                       " is absent from the graph coloring");
    }
    // The (4/5)^rounds amplification behind rounds_for_epsilon is valid
    // only while the constrained sieve's per-round Schwartz–Zippel failure
    // (2k-1)/2^l stays <= 4/5, i.e. 2^l >= 5(2k-1)/4.
    const std::uint64_t need =
        5ull * (2ull * static_cast<std::uint64_t>(spec.k) - 1ull);
    if ((std::uint64_t{1} << spec.field_bits) * 4ull < need)
      throw QueryValidationError(
          "field_bits",
          "2^l must be >= 5(2k-1)/4 for the motif error amplification");
  }
}

double DetectionService::now_s() const {
  return seconds_since(epoch_, Clock::now());
}

std::shared_future<QueryResult> DetectionService::submit(
    const QuerySpec& spec) {
  const std::uint64_t key = query_fingerprint(spec);
  std::shared_ptr<const graph::Graph> g = graph(spec.graph);
  if (!g) throw UnknownGraphError(spec.graph);
  validate(spec, *g);

  std::unique_lock lock(m_);
  if (stopping_) throw ServiceShutdownError();

  if (auto it = inflight_by_key_.find(key); it != inflight_by_key_.end()) {
    ++deduped_;
    MIDAS_TRACE_COUNT("service.deduped", 1);
    return it->second;
  }

  // Circuit breaker: fast-fail while the graph's artifact builds are known
  // bad. A half-open admit makes this query the probe — it carries the
  // breaker_probe flag so the probe slot is released if the query never
  // reaches a build outcome.
  const CircuitBreaker::State breaker_state =
      breaker_.admit(spec.graph, now_s());
  if (breaker_state == CircuitBreaker::State::kOpen) {
    ++breaker_fastfail_;
    MIDAS_TRACE_COUNT("service.breaker_fastfail", 1);
    throw CircuitOpenError(spec.graph,
                           breaker_.retry_after_s(spec.graph, now_s()));
  }
  const bool is_probe = breaker_state == CircuitBreaker::State::kHalfOpen;

  const std::size_t q_int = queued_locked(Lane::kInteractive);
  const std::size_t q_bat = queued_locked(Lane::kBatch);
  const std::size_t q_lane = spec.lane == Lane::kInteractive ? q_int : q_bat;
  if (q_lane >= opt_.queue_capacity) {
    if (is_probe) breaker_.release_probe(spec.graph);
    ++rejected_;
    MIDAS_TRACE_COUNT("service.rejected", 1);
    throw ServiceOverloadError(
        to_string(spec.lane), q_int, q_bat, opt_.queue_capacity,
        opt_.shed_enabled ? "deadline-aware" : "none");
  }

  // Deadline-aware shedding: if the lane's rolling mean execution time says
  // the queue wait alone already exceeds the timeout budget, reject now
  // instead of letting the deadline expire in the queue. Workers drain the
  // interactive lane first, so batch queries wait behind both lanes.
  if (opt_.shed_enabled && spec.timeout_s > 0.0) {
    const RollingWindow& w = exec_window_[lane_index(spec.lane)];
    if (w.count() >= opt_.shed_min_samples) {
      const std::size_t ahead =
          spec.lane == Lane::kInteractive ? q_int : q_int + q_bat;
      const double eta =
          w.mean() * static_cast<double>(ahead) /
          static_cast<double>(std::max<std::size_t>(1, workers_alive_));
      if (eta > spec.timeout_s) {
        if (is_probe) breaker_.release_probe(spec.graph);
        ++shed_;
        MIDAS_TRACE_COUNT("service.shed", 1);
        throw DeadlineInfeasibleError(eta, spec.timeout_s);
      }
    }
  }

  auto t = std::make_shared<Ticket>();
  t->spec = spec;
  t->fingerprint = key;
  // Cost-aware dispatch: place the ticket on the least-loaded worker
  // shard, weighted by the alpha-beta estimate of this query's work, so
  // a mix of heavy scans and light paths spreads by cost, not count.
  t->cost = estimate_query_cost(spec, g->num_vertices(), g->num_edges());
  t->shard = pick_shard_locked();
  t->retry = spec.retry.inherits() ? opt_.retry : spec.retry;
  if (t->retry.max_attempts < 1) t->retry.max_attempts = 1;
  t->breaker_probe = is_probe;
  t->submitted_at = Clock::now();
  if (spec.timeout_s > 0.0) {
    t->has_deadline = true;
    t->deadline = t->submitted_at + to_duration(spec.timeout_s);
  }
  std::shared_future<QueryResult> fut = t->promise.get_future().share();
  inflight_by_key_.emplace(key, fut);
  enqueue_locked(t);
  ++submitted_;
  MIDAS_TRACE_COUNT("service.submitted", 1);
  update_queue_gauge();
  lock.unlock();
  work_cv_.notify_one();
  return fut;
}

std::size_t DetectionService::queued_locked(Lane lane) const {
  std::size_t n = 0;
  for (const WorkerShard& s : shards_)
    n += lane == Lane::kInteractive ? s.interactive.size() : s.batch.size();
  return n;
}

bool DetectionService::queues_empty_locked() const {
  for (const WorkerShard& s : shards_)
    if (!s.interactive.empty() || !s.batch.empty()) return false;
  return true;
}

int DetectionService::pick_shard_locked() const {
  int best = 0;
  for (int i = 1; i < static_cast<int>(shards_.size()); ++i)
    if (shards_[i].load < shards_[best].load) best = i;
  return best;
}

void DetectionService::enqueue_locked(const std::shared_ptr<Ticket>& t,
                                      bool front) {
  WorkerShard& s = shards_[static_cast<std::size_t>(t->shard)];
  auto& lane = t->spec.lane == Lane::kInteractive ? s.interactive : s.batch;
  if (front)
    lane.push_front(t);
  else
    lane.push_back(t);
  s.load += t->cost;
  update_shard_gauges_locked();
}

std::shared_ptr<DetectionService::Ticket> DetectionService::dequeue_locked(
    int w) {
  // Lane priority stays global: every queued interactive ticket beats
  // every batch ticket, even across shards. Within a lane, own shard
  // first; otherwise steal from the most-loaded shard that has one
  // queued (millisort-style rebalancing of a skewed initial placement).
  const auto lane_of = [](WorkerShard& s, Lane l)
      -> std::deque<std::shared_ptr<Ticket>>& {
    return l == Lane::kInteractive ? s.interactive : s.batch;
  };
  for (Lane l : {Lane::kInteractive, Lane::kBatch}) {
    auto& own = lane_of(shards_[static_cast<std::size_t>(w)], l);
    if (!own.empty()) {
      auto t = own.front();
      own.pop_front();
      return t;
    }
    int victim = -1;
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      if (i == w || lane_of(shards_[static_cast<std::size_t>(i)], l).empty())
        continue;
      if (victim < 0 ||
          shards_[static_cast<std::size_t>(i)].load >
              shards_[static_cast<std::size_t>(victim)].load)
        victim = i;
    }
    if (victim >= 0) {
      auto& q = lane_of(shards_[static_cast<std::size_t>(victim)], l);
      auto t = q.front();
      q.pop_front();
      // The steal moves the ticket's charge: it will execute on w's
      // cores, so w's shard is what its cost now loads.
      release_charge_locked(t->shard, t->cost);
      t->shard = w;
      shards_[static_cast<std::size_t>(w)].load += t->cost;
      ++steals_;
      MIDAS_TRACE_COUNT("service.steals", 1);
      update_shard_gauges_locked();
      return t;
    }
  }
  return nullptr;
}

void DetectionService::release_charge_locked(int shard, double cost) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return;
  WorkerShard& s = shards_[static_cast<std::size_t>(shard)];
  s.load = std::max(0.0, s.load - cost);
  update_shard_gauges_locked();
}

void DetectionService::update_shard_gauges_locked() const {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shard_gauges_[i]->set(
        static_cast<std::int64_t>(shards_[i].load * 1e6));  // model-us
}

void DetectionService::update_queue_gauge() const {
  // m_ held by the caller.
  runtime::tracer().metrics().gauge("service.queue_depth")
      .set(static_cast<std::int64_t>(queued_locked(Lane::kInteractive) +
                                     queued_locked(Lane::kBatch) +
                                     hedge_.size()));
}

void DetectionService::update_breaker_gauge() {
  // m_ held by the caller.
  runtime::tracer().metrics().gauge("service.breaker_state")
      .set(static_cast<std::int64_t>(breaker_.open_count(now_s())));
}

void DetectionService::worker_main(int w) {
  // The worker's persistent rank pool: every SPMD gang this worker runs
  // parks/wakes these threads instead of spawning fresh ones. Sized by
  // the core budget, grown on demand for wider queries; destroyed (and
  // rebuilt by the replacement) when the worker dies, so a wedged rank
  // thread cannot outlive its worker.
  runtime::RankPool pool(budget_.ranks_per_worker);
  MIDAS_TRACE_SET_LANE(w * kWorkerLaneStride + kWorkerLaneStride - 1);
  try {
    worker_loop(w, pool);
    return;  // clean shutdown
  } catch (const std::exception& e) {
    log_warn("service worker died (", e.what(), "); replacing");
  } catch (...) {
    log_warn("service worker died on an unknown exception; replacing");
  }
  // Self-healing: the dying thread spawns its own replacement (inheriting
  // its shard index), so the pool never shrinks. The dead std::thread
  // object stays in workers_ for the destructor to join.
  std::lock_guard lock(m_);
  --workers_alive_;
  if (stopping_) return;
  ++worker_restarts_;
  MIDAS_TRACE_COUNT("service.worker_restarts", 1);
  workers_.emplace_back([this, w] { worker_main(w); });
  ++workers_alive_;
}

void DetectionService::worker_loop(int w, runtime::RankPool& pool) {
  for (;;) {
    std::shared_ptr<Ticket> t;
    bool is_hedge = false;
    int attempt = 0;
    Clock::time_point started;
    ExecContext ctx{&pool, w * kWorkerLaneStride, w};
    {
      std::unique_lock lock(m_);
      work_cv_.wait(lock, [this] {
        return stopping_ || !hedge_.empty() || !queues_empty_locked();
      });
      if (stopping_) return;
      if (!hedge_.empty()) {
        t = hedge_.front();
        hedge_.pop_front();
        is_hedge = true;
      } else {
        t = dequeue_locked(w);
        if (!t) continue;  // another worker stole the wakeup's work
      }
      const std::uint64_t dq = ++dequeues_;

      // Chaos: kill this worker thread at dequeue. The ticket goes back to
      // the front of its shard's lane first (charge intact), so the query
      // just sees a delay while the pool self-heals. Bounded per ticket so
      // chaos runs terminate.
      if (!is_hedge && chaos_.armed() &&
          t->worker_kills < chaos_.plan().max_faulty_attempts &&
          chaos_.should_kill_worker(dq)) {
        ++t->worker_kills;
        enqueue_locked(t, /*front=*/true);
        release_charge_locked(t->shard, t->cost);  // enqueue re-charged it
        update_queue_gauge();
        work_cv_.notify_one();
        throw WorkerKilledFault(dq);
      }

      if (t->settled) {
        // A queued hedge whose primary already finished: drop it. (Only
        // hedges can be settled while queued; they carry no queue charge.)
        if (!is_hedge) release_charge_locked(t->shard, t->cost);
        update_queue_gauge();
        drain_cv_.notify_all();
        continue;
      }

      started = Clock::now();
      if (!is_hedge && t->has_deadline && started >= t->deadline) {
        ++deadline_exceeded_;
        MIDAS_TRACE_COUNT("service.deadline_exceeded", 1);
        MIDAS_TRACE_INSTANT("service.query.deadline");
        t->settled = true;
        if (t->breaker_probe) breaker_.release_probe(t->spec.graph);
        t->promise.set_exception(
            std::make_exception_ptr(DeadlineExceededError()));
        inflight_by_key_.erase(t->fingerprint);
        release_charge_locked(t->shard, t->cost);
        update_queue_gauge();
        drain_cv_.notify_all();
        continue;
      }

      // Load accounting: a primary keeps the charge its submit placed on
      // t->shard (moved here by a steal) until run_attempt finishes; a
      // hedge is an extra concurrent attempt, so it charges this worker's
      // shard for its duration.
      if (is_hedge) {
        ctx.shard = w;
        shards_[static_cast<std::size_t>(w)].load += t->cost;
        update_shard_gauges_locked();
      } else {
        ctx.shard = t->shard;
      }

      attempt = t->attempts_started++;
      ++t->outstanding;
      executing_tickets_[t.get()] = t;
      if (!is_hedge) {
        t->exec_started = started;
        t->hedged = false;
      }
      ++executing_;
      update_queue_gauge();
      sup_cv_.notify_one();  // hedge watchdog: a new execution to watch
    }

    if (opt_.before_execute) opt_.before_execute(t->spec);
    run_attempt(t, is_hedge, attempt, started, ctx);
  }
}

void DetectionService::run_attempt(const std::shared_ptr<Ticket>& t,
                                   bool is_hedge, int attempt,
                                   Clock::time_point started,
                                   const ExecContext& ctx) {
  // Warm-pool accounting: gangs run while the pool has already served at
  // least one gang are reuses (park/wake, no thread spawned). Only this
  // worker runs gangs on its pool, so the before/after read is stable.
  const std::uint64_t gangs_before = ctx.pool ? ctx.pool->gangs() : 0;
  QueryResult result;
  std::exception_ptr error;
  {
    MIDAS_TRACE_SPAN("service.query",
                     {"type", static_cast<int>(t->spec.type)},
                     {"attempt", attempt});
    try {
      result = execute(t->spec, t->fingerprint, attempt, ctx);
    } catch (...) {
      error = std::current_exception();
    }
  }
  const auto done = Clock::now();
  result.queue_s = seconds_since(t->submitted_at, started);
  result.total_s = seconds_since(t->submitted_at, done);

  std::lock_guard lock(m_);
  if (ctx.pool && gangs_before > 0) {
    const std::uint64_t reused = ctx.pool->gangs() - gangs_before;
    pool_reuse_ += reused;
    MIDAS_TRACE_COUNT("service.pool_reuse", reused);
  }
  release_charge_locked(ctx.shard, t->cost);
  ++executed_;
  MIDAS_TRACE_COUNT("service.executed", 1);
  exec_window_[lane_index(t->spec.lane)].add(seconds_since(started, done));
  --t->outstanding;
  if (t->outstanding == 0) executing_tickets_.erase(t.get());
  if (!error) {
    // Audit sampling happens here, before --executing_ below: drain()
    // cannot observe "everything idle" between an answer settling and its
    // audit being queued. The decision copy is taken before settle_value
    // moves the result into the promise. Lock order: m_ -> sampler lock.
    if (auditor_ && !t->settled && !stopping_ &&
        auditor_->should_audit(t->fingerprint))
      auditor_->enqueue(t->spec, t->fingerprint, result);
    settle_value(t, std::move(result), is_hedge);
  } else {
    ++attempt_failures_;
    MIDAS_TRACE_COUNT("service.attempt_failures", 1);
    t->last_error = error;
    complete_failure(t, std::move(error));
  }
  --executing_;
  drain_cv_.notify_all();
}

void DetectionService::settle_value(const std::shared_ptr<Ticket>& t,
                                    QueryResult&& r, bool is_hedge) {
  // m_ held by the caller.
  if (t->settled) return;  // the sibling attempt won the race
  t->settled = true;
  r.attempts = t->attempts_started;
  r.hedge_won = is_hedge;
  if (is_hedge) {
    ++hedge_wins_;
    MIDAS_TRACE_COUNT("service.hedge_wins", 1);
  }
  MIDAS_TRACE_OBSERVE("service.query_latency_ns",
                      static_cast<std::uint64_t>(r.total_s * 1e9));
  // Any fully successful query proves the graph's artifact path works —
  // this also resolves a half-open probe whose artifacts were all cache
  // hits (no build ran to report success).
  breaker_.record_success(t->spec.graph);
  update_breaker_gauge();
  t->promise.set_value(std::move(r));
  inflight_by_key_.erase(t->fingerprint);
}

void DetectionService::settle_error(const std::shared_ptr<Ticket>& t,
                                    std::exception_ptr error) {
  // m_ held by the caller.
  if (t->settled) return;
  t->settled = true;
  if (t->breaker_probe) breaker_.release_probe(t->spec.graph);
  ++failed_;
  MIDAS_TRACE_COUNT("service.failed", 1);
  t->promise.set_exception(std::move(error));
  inflight_by_key_.erase(t->fingerprint);
}

void DetectionService::complete_failure(const std::shared_ptr<Ticket>& t,
                                        std::exception_ptr error) {
  // m_ held by the caller.
  if (t->settled) return;        // sibling already produced the answer
  if (t->outstanding > 0) return;  // let the still-running attempt decide
  if (t->retry_pending) return;  // a retry is already waiting out backoff
  const FaultClass cls = classify_failure(error);
  if (cls == FaultClass::kRetryable &&
      t->attempts_started < t->retry.max_attempts && !stopping_) {
    // Re-enqueue after backoff; the future (and its dedup waiters) stays
    // open. Retry number n = attempts already consumed.
    const double delay =
        backoff_s(t->retry, t->fingerprint, t->attempts_started);
    t->retry_pending = true;
    t->hedged = false;
    ++retried_;
    MIDAS_TRACE_COUNT("service.retries", 1);
    retry_heap_.push_back({Clock::now() + to_duration(delay), t});
    std::push_heap(retry_heap_.begin(), retry_heap_.end(),
                   std::greater<>{});
    sup_cv_.notify_one();
    return;
  }
  settle_error(t, std::move(error));
}

void DetectionService::supervisor_loop() {
  std::unique_lock lock(m_);
  while (!stopping_) {
    const auto now = Clock::now();

    // Fire due retries back into their lanes.
    while (!retry_heap_.empty() && retry_heap_.front().due <= now) {
      std::pop_heap(retry_heap_.begin(), retry_heap_.end(),
                    std::greater<>{});
      std::shared_ptr<Ticket> t = std::move(retry_heap_.back().ticket);
      retry_heap_.pop_back();
      t->retry_pending = false;
      if (t->settled) {
        // A sibling attempt settled the ticket while this retry waited out
        // its backoff (hedge/retry overlap can double-schedule). Discarding
        // it can empty the heap, so drain() waiters must be woken.
        drain_cv_.notify_all();
        continue;
      }
      // Re-dispatch like a fresh submit: the load picture has moved since
      // admission, so the retry goes to whichever shard is lightest now.
      t->shard = pick_shard_locked();
      enqueue_locked(t);
      update_queue_gauge();
      work_cv_.notify_one();
    }

    // Hedge watchdog: launch a racing attempt for any execution straggling
    // past hedge_multiplier x its lane's rolling p99.
    if (opt_.hedge_multiplier > 0.0) {
      for (auto& [ptr, t] : executing_tickets_) {
        if (t->settled || t->hedged || t->retry_pending ||
            t->outstanding != 1)
          continue;
        const RollingWindow& w = exec_window_[lane_index(t->spec.lane)];
        if (w.count() < opt_.hedge_min_samples) continue;
        const double threshold = std::max(
            opt_.hedge_min_s, opt_.hedge_multiplier * w.quantile(99.0));
        if (seconds_since(t->exec_started, now) <= threshold) continue;
        t->hedged = true;
        ++hedges_;
        MIDAS_TRACE_COUNT("service.hedges", 1);
        MIDAS_TRACE_INSTANT("service.hedge_launched");
        hedge_.push_back(t);
        update_queue_gauge();
        work_cv_.notify_one();
      }
    }

    auto wake = now + to_duration(opt_.supervisor_poll_s);
    if (!retry_heap_.empty()) wake = std::min(wake, retry_heap_.front().due);
    sup_cv_.wait_until(lock, wake);
  }
}

void DetectionService::guard_build(const std::string& key,
                                   const std::string& graph_name) {
  std::uint64_t index = 0;
  {
    std::lock_guard lock(m_);
    index = build_attempts_[key]++;
  }
  if (chaos_.armed() && chaos_.should_fail_build(key, index)) {
    {
      std::lock_guard lock(m_);
      ++chaos_build_failures_;
      note_build_failure_locked(graph_name);
    }
    MIDAS_TRACE_COUNT("service.chaos_build_failures", 1);
    throw InjectedBuildFailureError(key, index);
  }
}

void DetectionService::note_build_failure_locked(
    const std::string& graph_name) {
  // m_ held by the caller.
  if (breaker_.record_failure(graph_name, now_s())) {
    log_warn("service circuit breaker tripped for graph '", graph_name,
             "'");
    MIDAS_TRACE_COUNT("service.breaker_trips", 1);
  }
  update_breaker_gauge();
}

void DetectionService::note_build_failure(const std::string& graph_name) {
  std::lock_guard lock(m_);
  note_build_failure_locked(graph_name);
}

void DetectionService::note_build_success(const std::string& graph_name) {
  std::lock_guard lock(m_);
  breaker_.record_success(graph_name);
  update_breaker_gauge();
}

QueryResult DetectionService::run_engine(const QuerySpec& spec,
                                         const GraphArtifacts& artifacts,
                                         core::MidasOptions opt) {
  QueryResult qr;
  switch (spec.type) {
    case QueryType::kPath: {
      // k-path additionally caches the per-(seed, k, rounds) randomness
      // tables; the engine consumes them bit-identically to hashing.
      with_field(spec.field_bits, [&](const auto& f) {
        const std::string rkey = rand_key(spec);
        auto tables = cache_.get_or_build<core::RandTables>(rkey, [&] {
          guard_build(rkey, spec.graph);
          MIDAS_TRACE_SPAN("service.build_rand_tables", {"k", spec.k});
          try {
            auto t = core::build_rand_tables(artifacts.views, spec.seed,
                                             spec.k, spec.rounds(), f);
            note_build_success(spec.graph);
            return t;
          } catch (...) {
            note_build_failure(spec.graph);
            throw;
          }
        });
        opt.rand_tables = tables.get();
        core::MidasResult r =
            core::midas_kpath_views(artifacts.views, opt, f);
        qr.found = r.found;
        qr.rounds_run = r.rounds_run;
        qr.found_round = r.found_round;
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
    case QueryType::kTree: {
      graph::GraphBuilder tb(static_cast<graph::VertexId>(spec.k));
      for (const auto& [a, b] : spec.tree_edges) tb.add_edge(a, b);
      const graph::Graph tmpl = tb.build();
      const core::TreeDecomposition td(tmpl, spec.tree_root);
      with_field(spec.field_bits, [&](const auto& f) {
        core::MidasResult r =
            core::midas_ktree_views(artifacts.views, td, opt, f);
        qr.found = r.found;
        qr.rounds_run = r.rounds_run;
        qr.found_round = r.found_round;
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
    case QueryType::kScan: {
      with_field(spec.field_bits, [&](const auto& f) {
        core::MidasScanResult r =
            core::midas_scan_views(artifacts.views, spec.weights, opt, f);
        qr.table = std::move(r.table);
        qr.rounds_run = spec.rounds();
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
    case QueryType::kMotif: {
      with_field(spec.field_bits, [&](const auto& f) {
        core::MidasResult r = core::midas_motif_views(
            artifacts.views, spec.colors, spec.motif, opt, f);
        qr.found = r.found;
        qr.rounds_run = r.rounds_run;
        qr.found_round = r.found_round;
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
  }
  return qr;
}

QueryResult DetectionService::execute(const QuerySpec& spec,
                                      std::uint64_t fingerprint,
                                      int attempt, const ExecContext& ctx) {
  std::shared_ptr<const graph::Graph> g = graph(spec.graph);
  if (!g) throw UnknownGraphError(spec.graph);

  const std::string vkey = views_key(spec);
  auto artifacts = cache_.get_or_build<GraphArtifacts>(vkey, [&] {
    guard_build(vkey, spec.graph);
    MIDAS_TRACE_SPAN("service.build_artifacts", {"n1", spec.n1});
    try {
      GraphArtifacts a;
      a.part = partition::multilevel_partition(*g, spec.n1);
      a.views = partition::build_part_views(*g, a.part);
      note_build_success(spec.graph);
      return a;
    } catch (...) {
      note_build_failure(spec.graph);
      throw;
    }
  });

  core::MidasOptions opt = engine_options(spec);
  // Pooled execution: the gang reuses the worker's persistent rank
  // threads. Placement-only — the rank bodies, vclock charges and answers
  // are bit-exact with spawn/join (the pool never enters a fingerprint or
  // cache key). Audit probes arrive with a default ctx and spawn/join.
  opt.spmd.pool = ctx.pool;
  opt.spmd.trace_lane_base = ctx.lane_base;
  // Chaos: seeded per-(query, attempt) rank kills and message corruption,
  // injected into the engine run's fault plan. The fault-free path leaves
  // opt untouched, so fault-free answers (including vtime) are bit-exact
  // with direct engine runs.
  if (chaos_.armed() && chaos_.apply_engine_faults(opt, fingerprint, attempt)) {
    {
      std::lock_guard lock(m_);
      ++chaos_engine_faults_;
    }
    MIDAS_TRACE_COUNT("service.chaos_engine_faults", 1);
  }

  QueryResult qr = run_engine(spec, *artifacts, opt);

  // -- honest error accounting (service/integrity.hpp) --------------------
  // Only rounds of THIS successful attempt count toward the claimed bound;
  // a faulted attempt's rounds died with its exception and never reach
  // here, so they can never inflate achieved_epsilon.
  qr.target_epsilon = spec.epsilon;
  const int target_rounds = core::rounds_for_epsilon(spec.epsilon);

  // Adaptive re-amplification: a "no" whose run was capped short of its
  // epsilon target (max_rounds) gets the missing rounds under a derived
  // seed, reusing the cached views. Can flip "no" to "yes" — which is why
  // reamplify is part of the answer fingerprint.
  const bool wants_reamp =
      spec.reamplify && qr.rounds_run < target_rounds &&
      (spec.type == QueryType::kScan || !qr.found);
  if (wants_reamp) {
    QuerySpec topup = spec;
    topup.seed = runtime::fault_mix(spec.seed ^ 0x7EA3ULL);
    topup.max_rounds = target_rounds - qr.rounds_run;
    topup.certify = false;
    topup.reamplify = false;
    core::MidasOptions topup_opt = engine_options(topup);
    topup_opt.spmd.pool = ctx.pool;
    topup_opt.spmd.trace_lane_base = ctx.lane_base;
    QueryResult extra = run_engine(topup, *artifacts, topup_opt);
    qr.reamp_rounds = extra.rounds_run;
    qr.vtime += extra.vtime;
    qr.engine_wall_s += extra.engine_wall_s;
    if (spec.type == QueryType::kScan) {
      // OR-merge: a cell feasible in either run is feasible ("yes" entries
      // are always correct; the merge only removes false "no"s).
      for (std::size_t j = 0; j < qr.table.feasible.size() &&
                              j < extra.table.feasible.size(); ++j)
        for (std::size_t z = 0; z < qr.table.feasible[j].size() &&
                                z < extra.table.feasible[j].size(); ++z)
          if (extra.table.feasible[j][z]) qr.table.feasible[j][z] = true;
    } else if (extra.found) {
      qr.found = true;
      qr.found_round = qr.rounds_run + extra.found_round;
    }
    {
      std::lock_guard lock(m_);
      ++reamplified_;
    }
    MIDAS_TRACE_COUNT("service.integrity_reamplified", 1);
  }
  qr.achieved_epsilon =
      achieved_epsilon(qr.found, qr.rounds_run + qr.reamp_rounds);

  // -- certified positives -------------------------------------------------
  if (spec.certify) {
    if (certify_result(*g, spec, qr)) {
      if (qr.certified) {
        {
          std::lock_guard lock(m_);
          ++certified_;
        }
        MIDAS_TRACE_COUNT("service.integrity_certified", 1);
      }
    } else {
      // Peeling cannot lose a witness the graph contains, so failing to
      // back this "yes" proves the decision itself was corrupt. Flag the
      // answer (certified stays false beside found == true), count it,
      // and quarantine the graph's cached state.
      {
        std::lock_guard lock(m_);
        ++cert_failures_;
      }
      MIDAS_TRACE_COUNT("service.integrity_cert_failures", 1);
      log_warn("certification FAILED for a 'yes' on graph '", spec.graph,
               "' — quarantining");
      quarantine_graph(spec.graph);
    }
  }
  return qr;
}

void DetectionService::quarantine_graph(const std::string& graph_name) {
  {
    std::lock_guard lock(m_);
    ++integrity_quarantines_;
    breaker_.force_open(graph_name, now_s());
    update_breaker_gauge();
  }
  MIDAS_TRACE_COUNT("service.integrity_quarantines", 1);
  // Flush outside m_ (erase_prefix takes the cache shard locks).
  cache_.erase_prefix("views/" + graph_name + "/");
  cache_.erase_prefix("rand/" + graph_name + "/");
}

void DetectionService::drain() {
  {
    std::unique_lock lock(m_);
    drain_cv_.wait(lock, [this] {
      return queues_empty_locked() && hedge_.empty() &&
             retry_heap_.empty() && executing_ == 0;
    });
  }
  // Lanes idle: every settled answer has already enqueued its audit (the
  // enqueue happens before --executing_), so this wait is complete.
  if (auditor_) auditor_->drain();
}

ServiceStats DetectionService::stats() const {
  ServiceStats s;
  {
    std::lock_guard lock(m_);
    s.submitted = submitted_;
    s.executed = executed_;
    s.deduped = deduped_;
    s.rejected = rejected_;
    s.shed = shed_;
    s.deadline_exceeded = deadline_exceeded_;
    s.failed = failed_;
    s.attempt_failures = attempt_failures_;
    s.retried = retried_;
    s.hedges = hedges_;
    s.hedge_wins = hedge_wins_;
    s.worker_restarts = worker_restarts_;
    s.breaker_trips = breaker_.trips();
    s.breaker_fastfail = breaker_fastfail_;
    s.chaos_engine_faults = chaos_engine_faults_;
    s.chaos_build_failures = chaos_build_failures_;
    s.chaos_artifact_flips = chaos_artifact_flips_;
    s.certified = certified_;
    s.cert_failures = cert_failures_;
    s.reamplified = reamplified_;
    s.integrity_quarantines = integrity_quarantines_;
    s.workers_alive = workers_alive_;
    s.breaker_open = breaker_.open_count(
        seconds_since(epoch_, Clock::now()));
    s.queued_interactive = queued_locked(Lane::kInteractive);
    s.queued_batch = queued_locked(Lane::kBatch);
    s.retry_pending = retry_heap_.size();
    s.inflight = executing_;
    s.workers = budget_.workers;
    s.cores = budget_.cores;
    s.ranks_per_worker = budget_.ranks_per_worker;
    s.pool_reuse = pool_reuse_;
    s.steals = steals_;
    s.shard_load.reserve(shards_.size());
    s.shard_queued.reserve(shards_.size());
    for (const WorkerShard& sh : shards_) {
      s.shard_load.push_back(sh.load);
      s.shard_queued.push_back(sh.interactive.size() + sh.batch.size());
    }
  }
  if (auditor_) {
    const AuditSampler::Counters a = auditor_->counters();
    s.audits_scheduled = a.scheduled;
    s.audits_completed = a.completed;
    s.audit_mismatches = a.mismatches;
    s.audit_missed_yes = a.missed_yes;
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace midas::service
