#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/tree_template.hpp"
#include "gf/gf256.hpp"
#include "gf/gfsmall.hpp"
#include "partition/multilevel.hpp"
#include "runtime/trace.hpp"

namespace midas::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// Run `fn` with the field instance matching `l` bits. GF(2^8) has the
/// table-driven implementation; every other width uses GFSmall.
template <typename Fn>
decltype(auto) with_field(int l, Fn&& fn) {
  if (l == 8) return fn(gf::GF256{});
  return fn(gf::GFSmall(l));
}

core::MidasOptions engine_options(const QuerySpec& spec) {
  core::MidasOptions opt;
  opt.k = spec.k;
  opt.epsilon = spec.epsilon;
  opt.seed = spec.seed;
  opt.n_ranks = spec.n_ranks;
  opt.n1 = spec.n1;
  opt.n2 = spec.n2;
  opt.max_rounds = spec.max_rounds;
  opt.early_exit = spec.early_exit;
  opt.kernel = spec.kernel;
  return opt;
}

std::string views_key(const QuerySpec& spec) {
  return "views/" + spec.graph + "/n1=" + std::to_string(spec.n1);
}

std::string rand_key(const QuerySpec& spec) {
  return "rand/" + spec.graph + "/n1=" + std::to_string(spec.n1) +
         "/l=" + std::to_string(spec.field_bits) +
         "/seed=" + std::to_string(spec.seed) +
         "/k=" + std::to_string(spec.k) +
         "/rounds=" + std::to_string(spec.rounds());
}

}  // namespace

DetectionService::DetectionService(ServiceOptions opt)
    : opt_(std::move(opt)),
      cache_(opt_.cache_capacity, opt_.cache_enabled) {
  if (opt_.workers < 1)
    throw std::invalid_argument("service needs at least one worker");
  if (opt_.queue_capacity < 1)
    throw std::invalid_argument("service needs queue_capacity >= 1");
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

DetectionService::~DetectionService() {
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard lock(m_);
    stopping_ = true;
    orphans.swap(interactive_);
    for (auto& p : batch_) orphans.push_back(std::move(p));
    batch_.clear();
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
  for (auto& p : orphans)
    p->promise.set_exception(
        std::make_exception_ptr(ServiceShutdownError()));
}

void DetectionService::add_graph(const std::string& name, graph::Graph g) {
  auto ptr = std::make_shared<const graph::Graph>(std::move(g));
  std::lock_guard lock(m_);
  graphs_[name] = std::move(ptr);
}

std::shared_ptr<const graph::Graph> DetectionService::graph(
    const std::string& name) const {
  std::lock_guard lock(m_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

void DetectionService::validate(const QuerySpec& spec) const {
  // m_ held by the caller (graphs_ access).
  auto git = graphs_.find(spec.graph);
  if (git == graphs_.end()) throw UnknownGraphError(spec.graph);
  const graph::Graph& g = *git->second;
  if (spec.k < 1) throw std::invalid_argument("k must be >= 1");
  if (spec.field_bits < 2 || spec.field_bits > 16)
    throw std::invalid_argument("field_bits must be in [2, 16]");
  if (spec.n1 < 1 || spec.n_ranks < spec.n1 || spec.n_ranks % spec.n1 != 0)
    throw std::invalid_argument("N1 must divide N");
  if (spec.n2 < 1) throw std::invalid_argument("N2 must be >= 1");
  if (spec.type == QueryType::kTree &&
      spec.tree_edges.size() + 1 != static_cast<std::size_t>(spec.k))
    throw std::invalid_argument("tree template needs exactly k-1 edges");
  if (spec.type == QueryType::kScan &&
      spec.weights.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("scan needs one weight per graph vertex");
}

std::shared_future<QueryResult> DetectionService::submit(
    const QuerySpec& spec) {
  const std::uint64_t key = query_fingerprint(spec);
  std::unique_lock lock(m_);
  if (stopping_) throw ServiceShutdownError();
  validate(spec);

  if (auto it = inflight_by_key_.find(key); it != inflight_by_key_.end()) {
    ++deduped_;
    MIDAS_TRACE_COUNT("service.deduped", 1);
    return it->second;
  }

  auto& lane = spec.lane == Lane::kInteractive ? interactive_ : batch_;
  if (lane.size() >= opt_.queue_capacity) {
    ++rejected_;
    MIDAS_TRACE_COUNT("service.rejected", 1);
    throw ServiceOverloadError(to_string(spec.lane), lane.size());
  }

  auto p = std::make_unique<Pending>();
  p->spec = spec;
  p->fingerprint = key;
  p->submitted_at = Clock::now();
  if (spec.timeout_s > 0.0) {
    p->has_deadline = true;
    p->deadline = p->submitted_at +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(spec.timeout_s));
  }
  std::shared_future<QueryResult> fut = p->promise.get_future().share();
  inflight_by_key_.emplace(key, fut);
  lane.push_back(std::move(p));
  ++submitted_;
  MIDAS_TRACE_COUNT("service.submitted", 1);
  update_queue_gauge();
  lock.unlock();
  work_cv_.notify_one();
  return fut;
}

void DetectionService::update_queue_gauge() const {
  // m_ held by the caller.
  runtime::tracer().metrics().gauge("service.queue_depth")
      .set(static_cast<std::int64_t>(interactive_.size() + batch_.size()));
}

void DetectionService::worker_loop() {
  for (;;) {
    std::unique_ptr<Pending> p;
    {
      std::unique_lock lock(m_);
      work_cv_.wait(lock, [this] {
        return stopping_ || !interactive_.empty() || !batch_.empty();
      });
      if (stopping_) return;
      auto& lane = !interactive_.empty() ? interactive_ : batch_;
      p = std::move(lane.front());
      lane.pop_front();
      ++executing_;
      update_queue_gauge();
    }

    const auto started = Clock::now();
    if (p->has_deadline && started >= p->deadline) {
      std::lock_guard lock(m_);
      ++deadline_exceeded_;
      MIDAS_TRACE_COUNT("service.deadline_exceeded", 1);
      MIDAS_TRACE_INSTANT("service.query.deadline");
      p->promise.set_exception(
          std::make_exception_ptr(DeadlineExceededError()));
      inflight_by_key_.erase(p->fingerprint);
      --executing_;
      drain_cv_.notify_all();
      continue;
    }

    if (opt_.before_execute) opt_.before_execute(p->spec);
    finish(std::move(p), started);
  }
}

void DetectionService::finish(std::unique_ptr<Pending> p,
                              Clock::time_point started) {
  QueryResult result;
  std::exception_ptr error;
  {
    MIDAS_TRACE_SPAN("service.query",
                     {"type", static_cast<int>(p->spec.type)},
                     {"k", p->spec.k});
    try {
      result = execute(p->spec);
    } catch (...) {
      error = std::current_exception();
    }
  }
  const auto done = Clock::now();
  result.queue_s = seconds_since(p->submitted_at, started);
  result.total_s = seconds_since(p->submitted_at, done);
  MIDAS_TRACE_OBSERVE(
      "service.query_latency_ns",
      static_cast<std::uint64_t>(result.total_s * 1e9));

  std::lock_guard lock(m_);
  ++executed_;
  MIDAS_TRACE_COUNT("service.executed", 1);
  if (error) {
    ++failed_;
    MIDAS_TRACE_COUNT("service.failed", 1);
    p->promise.set_exception(error);
  } else {
    p->promise.set_value(std::move(result));
  }
  inflight_by_key_.erase(p->fingerprint);
  --executing_;
  drain_cv_.notify_all();
}

QueryResult DetectionService::execute(const QuerySpec& spec) {
  std::shared_ptr<const graph::Graph> g = graph(spec.graph);
  if (!g) throw UnknownGraphError(spec.graph);

  auto artifacts = cache_.get_or_build<GraphArtifacts>(
      views_key(spec), [&] {
        MIDAS_TRACE_SPAN("service.build_artifacts", {"n1", spec.n1});
        GraphArtifacts a;
        a.part = partition::multilevel_partition(*g, spec.n1);
        a.views = partition::build_part_views(*g, a.part);
        return a;
      });

  core::MidasOptions opt = engine_options(spec);
  QueryResult qr;
  switch (spec.type) {
    case QueryType::kPath: {
      // k-path additionally caches the per-(seed, k, rounds) randomness
      // tables; the engine consumes them bit-identically to hashing.
      with_field(spec.field_bits, [&](const auto& f) {
        auto tables = cache_.get_or_build<core::RandTables>(
            rand_key(spec), [&] {
              MIDAS_TRACE_SPAN("service.build_rand_tables", {"k", spec.k});
              return core::build_rand_tables(artifacts->views, spec.seed,
                                             spec.k, spec.rounds(), f);
            });
        opt.rand_tables = tables.get();
        core::MidasResult r = core::midas_kpath_views(artifacts->views, opt, f);
        qr.found = r.found;
        qr.rounds_run = r.rounds_run;
        qr.found_round = r.found_round;
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
    case QueryType::kTree: {
      graph::GraphBuilder tb(static_cast<graph::VertexId>(spec.k));
      for (const auto& [a, b] : spec.tree_edges) tb.add_edge(a, b);
      const graph::Graph tmpl = tb.build();
      const core::TreeDecomposition td(tmpl, spec.tree_root);
      with_field(spec.field_bits, [&](const auto& f) {
        core::MidasResult r =
            core::midas_ktree_views(artifacts->views, td, opt, f);
        qr.found = r.found;
        qr.rounds_run = r.rounds_run;
        qr.found_round = r.found_round;
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
    case QueryType::kScan: {
      with_field(spec.field_bits, [&](const auto& f) {
        core::MidasScanResult r =
            core::midas_scan_views(artifacts->views, spec.weights, opt, f);
        qr.table = std::move(r.table);
        qr.rounds_run = spec.rounds();
        qr.vtime = r.vtime;
        qr.engine_wall_s = r.wall_s;
      });
      break;
    }
  }
  return qr;
}

void DetectionService::drain() {
  std::unique_lock lock(m_);
  drain_cv_.wait(lock, [this] {
    return interactive_.empty() && batch_.empty() && executing_ == 0;
  });
}

ServiceStats DetectionService::stats() const {
  ServiceStats s;
  {
    std::lock_guard lock(m_);
    s.submitted = submitted_;
    s.executed = executed_;
    s.deduped = deduped_;
    s.rejected = rejected_;
    s.deadline_exceeded = deadline_exceeded_;
    s.failed = failed_;
    s.queued_interactive = interactive_.size();
    s.queued_batch = batch_.size();
    s.inflight = executing_;
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace midas::service
