#include "service/artifact_cache.hpp"

#include <algorithm>
#include <utility>

#include "runtime/trace.hpp"

namespace midas::service {

std::shared_ptr<const void> ArtifactCache::lookup(const std::string& key,
                                                  std::uint64_t& expected) {
  Shard& s = shard_for(key);
  {
    // Hit fast path: shared lock only. Ready entries are immutable except
    // for the atomic recency stamp, so any number of workers hitting the
    // same key (the steady state of a few-graphs/many-queries workload)
    // proceed without serializing on each other.
    std::shared_lock lock(s.m);
    auto it = s.entries.find(key);
    if (it != s.entries.end() && !it->second.building) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      MIDAS_TRACE_COUNT("service.cache.hits", 1);
      it->second.last_used.store(
          clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      expected = it->second.checksum;
      return it->second.value;
    }
  }
  std::unique_lock lock(s.m);
  for (;;) {
    auto it = s.entries.find(key);
    if (it == s.entries.end()) {
      // Miss: claim the build slot so concurrent requesters park on cv.
      misses_.fetch_add(1, std::memory_order_relaxed);
      MIDAS_TRACE_COUNT("service.cache.misses", 1);
      Entry e;
      e.building = true;
      s.entries.emplace(key, std::move(e));
      return nullptr;
    }
    if (it->second.building) {
      // Another thread is building this key: single-flight wait. If the
      // build fails the entry disappears and the loop retries, making one
      // waiter the new builder.
      s.cv.wait(lock);
      continue;
    }
    // Published between the shared-lock probe and here: still a hit.
    hits_.fetch_add(1, std::memory_order_relaxed);
    MIDAS_TRACE_COUNT("service.cache.hits", 1);
    it->second.last_used.store(
        clock_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    expected = it->second.checksum;
    return it->second.value;
  }
}

void ArtifactCache::publish(const std::string& key,
                            std::shared_ptr<const void> value,
                            std::uint64_t checksum) {
  Shard& s = shard_for(key);
  {
    std::lock_guard lock(s.m);
    builds_.fetch_add(1, std::memory_order_relaxed);
    MIDAS_TRACE_COUNT("service.cache.builds", 1);
    auto it = s.entries.find(key);
    if (it != s.entries.end()) {
      it->second.value = std::move(value);
      it->second.building = false;
      it->second.checksum = checksum;
      it->second.last_used.store(
          clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
  }
  s.cv.notify_all();
  evict_over_capacity();
}

void ArtifactCache::quarantine(const std::string& key,
                               const std::shared_ptr<const void>& value) {
  Shard& s = shard_for(key);
  {
    std::lock_guard lock(s.m);
    auto it = s.entries.find(key);
    // Erase only while the entry still holds the corrupted object —
    // concurrent readers of the same bad value race here, and a fresh
    // rebuild must survive the losers.
    if (it != s.entries.end() && !it->second.building &&
        it->second.value == value)
      s.entries.erase(it);
  }
  corruptions_.fetch_add(1, std::memory_order_relaxed);
  MIDAS_TRACE_COUNT("service.integrity_corruptions", 1);
  if (on_corruption_) on_corruption_(key);
}

void ArtifactCache::evict_over_capacity() {
  // Publishes are rare (one per distinct artifact), so the all-shards lock
  // here is off the hot path; it is what keeps eviction order exactly
  // global-LRU rather than per-shard.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& s : shards_) locks.emplace_back(s.m);
  for (;;) {
    std::size_t ready = 0;
    Shard* victim_shard = nullptr;
    std::map<std::string, Entry>::iterator victim;
    for (Shard& s : shards_) {
      for (auto e = s.entries.begin(); e != s.entries.end(); ++e) {
        if (e->second.building) continue;
        ++ready;
        if (victim_shard == nullptr ||
            e->second.last_used.load(std::memory_order_relaxed) <
                victim->second.last_used.load(std::memory_order_relaxed)) {
          victim_shard = &s;
          victim = e;
        }
      }
    }
    if (ready <= capacity_ || victim_shard == nullptr) break;
    victim_shard->entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    MIDAS_TRACE_COUNT("service.cache.evictions", 1);
  }
}

void ArtifactCache::abandon(const std::string& key) noexcept {
  Shard& s = shard_for(key);
  {
    std::lock_guard lock(s.m);
    auto it = s.entries.find(key);
    if (it != s.entries.end() && it->second.building) s.entries.erase(it);
  }
  s.cv.notify_all();
}

void ArtifactCache::count_miss() noexcept {
  misses_.fetch_add(1, std::memory_order_relaxed);
  MIDAS_TRACE_COUNT("service.cache.misses", 1);
}

void ArtifactCache::count_build() noexcept {
  builds_.fetch_add(1, std::memory_order_relaxed);
  MIDAS_TRACE_COUNT("service.cache.builds", 1);
}

void ArtifactCache::count_verification() noexcept {
  verifications_.fetch_add(1, std::memory_order_relaxed);
  MIDAS_TRACE_COUNT("service.integrity_verifications", 1);
}

ArtifactCache::Stats ArtifactCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          builds_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed),
          verifications_.load(std::memory_order_relaxed),
          corruptions_.load(std::memory_order_relaxed)};
}

std::vector<std::string> ArtifactCache::keys_lru() const {
  std::vector<std::pair<std::uint64_t, std::string>> stamped;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.m);
    for (const auto& [key, e] : s.entries)
      if (!e.building)
        stamped.emplace_back(e.last_used.load(std::memory_order_relaxed),
                             key);
  }
  std::sort(stamped.begin(), stamped.end());
  std::vector<std::string> keys;
  keys.reserve(stamped.size());
  for (auto& [_, key] : stamped) keys.push_back(std::move(key));
  return keys;
}

std::size_t ArtifactCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(s.m);
    n += s.entries.size();
  }
  return n;
}

void ArtifactCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard lock(s.m);
    for (auto it = s.entries.begin(); it != s.entries.end();) {
      if (!it->second.building)
        it = s.entries.erase(it);
      else
        ++it;
    }
  }
}

std::size_t ArtifactCache::erase_prefix(const std::string& prefix) {
  std::size_t dropped = 0;
  for (Shard& s : shards_) {
    std::lock_guard lock(s.m);
    for (auto it = s.entries.begin(); it != s.entries.end();) {
      if (!it->second.building &&
          it->first.compare(0, prefix.size(), prefix) == 0) {
        it = s.entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  evictions_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

}  // namespace midas::service
