#include "service/artifact_cache.hpp"

#include <algorithm>

#include "runtime/trace.hpp"

namespace midas::service {

std::shared_ptr<const void> ArtifactCache::lookup(const std::string& key) {
  std::unique_lock lock(m_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // Miss: claim the build slot so concurrent requesters park on cv_.
      ++misses_;
      MIDAS_TRACE_COUNT("service.cache.misses", 1);
      Entry e;
      e.building = true;
      entries_.emplace(key, std::move(e));
      return nullptr;
    }
    if (it->second.building) {
      // Another thread is building this key: single-flight wait. If the
      // build fails the entry disappears and the loop retries, making one
      // waiter the new builder.
      cv_.wait(lock);
      continue;
    }
    ++hits_;
    MIDAS_TRACE_COUNT("service.cache.hits", 1);
    it->second.last_used = ++clock_;
    return it->second.value;
  }
}

void ArtifactCache::publish(const std::string& key,
                            std::shared_ptr<const void> value) {
  std::lock_guard lock(m_);
  ++builds_;
  MIDAS_TRACE_COUNT("service.cache.builds", 1);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = std::move(value);
    it->second.building = false;
    it->second.last_used = ++clock_;
  }
  // Evict ready entries past capacity, least recently used first. Entries
  // mid-build are never evicted — their builder will publish into them.
  while (true) {
    std::size_t ready = 0;
    auto victim = entries_.end();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e->second.building) continue;
      ++ready;
      if (victim == entries_.end() ||
          e->second.last_used < victim->second.last_used)
        victim = e;
    }
    if (ready <= capacity_ || victim == entries_.end()) break;
    entries_.erase(victim);
    ++evictions_;
    MIDAS_TRACE_COUNT("service.cache.evictions", 1);
  }
  cv_.notify_all();
}

void ArtifactCache::abandon(const std::string& key) noexcept {
  std::lock_guard lock(m_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.building) entries_.erase(it);
  cv_.notify_all();
}

void ArtifactCache::count_miss() noexcept {
  std::lock_guard lock(m_);
  ++misses_;
  MIDAS_TRACE_COUNT("service.cache.misses", 1);
}

void ArtifactCache::count_build() noexcept {
  std::lock_guard lock(m_);
  ++builds_;
  MIDAS_TRACE_COUNT("service.cache.builds", 1);
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard lock(m_);
  return {hits_, misses_, builds_, evictions_};
}

std::vector<std::string> ArtifactCache::keys_lru() const {
  std::lock_guard lock(m_);
  std::vector<std::pair<std::uint64_t, std::string>> stamped;
  stamped.reserve(entries_.size());
  for (const auto& [key, e] : entries_)
    if (!e.building) stamped.emplace_back(e.last_used, key);
  std::sort(stamped.begin(), stamped.end());
  std::vector<std::string> keys;
  keys.reserve(stamped.size());
  for (auto& [_, key] : stamped) keys.push_back(std::move(key));
  return keys;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard lock(m_);
  return entries_.size();
}

void ArtifactCache::clear() {
  std::lock_guard lock(m_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!it->second.building)
      it = entries_.erase(it);
    else
      ++it;
  }
}

}  // namespace midas::service
