// Service-level resilience for the DetectionService (docs/RESILIENCE.md §7,
// docs/SERVICE.md "Failure semantics").
//
// The engine already survives injected faults (failover, checkpoint/restart,
// watchdog speculation); this header gives the *query front end* the same
// story. Four pieces:
//
//  * Fault classification — classify_failure() splits every error a query
//    execution can raise into retryable (rank deaths, world aborts,
//    timeouts, injected/transient artifact-build failures) vs. fatal
//    (validation bugs, unknown graphs, open circuits). Retryable failures
//    are re-enqueued under the query's RetryPolicy instead of poisoning its
//    future — and dedup waiters ride the retry.
//
//  * backoff_s() — exponential backoff with deterministic seeded jitter:
//    a pure function of (policy, query fingerprint, attempt), so a query's
//    retry schedule is bit-identical across reruns, which is what lets the
//    chaos suite assert schedules instead of sleeping and hoping.
//
//  * CircuitBreaker — per-key (per-graph) consecutive-failure breaker with
//    the classic closed -> open -> half-open probe cycle. While open,
//    queries fast-fail with CircuitOpenError instead of queueing behind a
//    build that cannot succeed.
//
//  * ServiceFaultPlan / ServiceFaultInjector — the chaos harness. Extends
//    the PR-1 engine FaultPlan to the service layer: per-query-attempt rank
//    kills and message corruption injected into the engine run's fault
//    plan, forced artifact-build failures, and worker-thread kills at
//    dequeue. Every decision is a pure function of (plan seed, fingerprint
//    or key, attempt), and attempts past max_faulty_attempts are always
//    clean, so chaos runs are reproducible and always terminate.
//
// RollingWindow is the small latency sketch behind hedging (lane p99) and
// deadline-aware admission (lane mean); it is deliberately unlocked — the
// service guards it with its own mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/detect_par.hpp"
#include "runtime/fault.hpp"
#include "service/query.hpp"

namespace midas::service {

// ---------------------------------------------------------------------------
// Chaos-only errors
// ---------------------------------------------------------------------------

/// A forced artifact-build failure injected by the chaos harness. Transient
/// by construction (the injector stops failing a key after
/// max_faulty_attempts builds), so it is classified retryable.
class InjectedBuildFailureError : public ServiceError {
 public:
  InjectedBuildFailureError(const std::string& key, std::uint64_t build)
      : ServiceError("injected artifact-build failure: key '" + key +
                     "' build #" + std::to_string(build)) {}
};

/// A worker-thread kill injected by the chaos harness at dequeue. The work
/// item is re-enqueued before the throw, the dying worker is replaced
/// (DetectionService self-healing), and the query retries transparently.
class WorkerKilledFault : public ServiceError {
 public:
  explicit WorkerKilledFault(std::uint64_t dequeue)
      : ServiceError("service worker killed by chaos plan at dequeue #" +
                     std::to_string(dequeue)) {}
};

// ---------------------------------------------------------------------------
// Fault classification
// ---------------------------------------------------------------------------

enum class FaultClass {
  kRetryable,  // transient: re-enqueue under the RetryPolicy
  kFatal,      // deterministic: settle the future with the error
};

/// Classify one execution failure. Retryable: the runtime fault family
/// (rank kills/failures, world aborts, timeouts, unrecoverable-this-run
/// failover exhaustion — the next attempt draws a different fault schedule)
/// plus the chaos harness's injected build failures and worker kills.
/// Everything else — validation errors, unknown graphs, open circuits,
/// exhausted memory, unknown exceptions — is fatal: retrying a caller bug
/// or an unknown failure mode just burns the pool.
[[nodiscard]] FaultClass classify_failure(
    const std::exception_ptr& error) noexcept;

/// Human-readable class name ("retryable" / "fatal") for logs and traces.
[[nodiscard]] const char* to_string(FaultClass c) noexcept;

// ---------------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------------

/// Backoff before retry number `attempt` (1 = first retry) of the query
/// with fingerprint `key`: exponential in the attempt, scaled by a
/// deterministic jitter in [1 - jitter, 1 + jitter] drawn from (key,
/// attempt). Pure function — rerunning a workload reproduces every retry
/// schedule exactly.
[[nodiscard]] double backoff_s(const RetryPolicy& policy, std::uint64_t key,
                               int attempt) noexcept;

// ---------------------------------------------------------------------------
// Rolling latency window
// ---------------------------------------------------------------------------

/// Fixed-capacity ring of the most recent samples with mean and quantile
/// digests. NOT internally synchronized: the service updates and reads it
/// under its own mutex.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity = 128)
      : buf_(capacity > 0 ? capacity : 1) {}

  void add(double v) noexcept {
    buf_[next_] = v;
    next_ = (next_ + 1) % buf_.size();
    if (n_ < buf_.size()) ++n_;
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept;
  /// q in [0, 100]; returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> buf_;
  std::size_t next_ = 0;
  std::size_t n_ = 0;
};

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Per-key consecutive-failure circuit breaker (key = graph name in the
/// service). Closed until `failure_threshold` consecutive recorded
/// failures; then open for `cooldown_s`, during which admit() fast-fails;
/// after the cooldown exactly one caller is granted a half-open probe —
/// its success closes the circuit, its failure re-opens it for another
/// cooldown. All methods are unsynchronized: callers (the service) hold
/// their own lock.
class CircuitBreaker {
 public:
  struct Config {
    int failure_threshold = 3;  // consecutive failures that trip the breaker
    double cooldown_s = 5.0;    // open duration before the half-open probe
    bool enabled = true;
  };

  enum class State { kClosed, kHalfOpen, kOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(const Config& cfg) : cfg_(cfg) {}

  /// Gate one call on `key` at time `now_s` (any monotonic seconds source).
  /// kClosed / kHalfOpen mean proceed (kHalfOpen: this caller holds the
  /// only probe); kOpen means fast-fail.
  [[nodiscard]] State admit(const std::string& key, double now_s);

  void record_success(const std::string& key);
  /// Returns true when this failure tripped the breaker open (either the
  /// threshold was crossed or a half-open probe failed).
  bool record_failure(const std::string& key, double now_s);
  /// Trip the breaker open immediately, regardless of the consecutive-
  /// failure count — the integrity layer's quarantine path (an audit
  /// decision mismatch is proof of corruption, not a trend to average).
  void force_open(const std::string& key, double now_s);
  /// Give back an unused half-open probe slot (the probing caller went
  /// away without reaching a build), so a later caller can probe instead.
  void release_probe(const std::string& key);

  [[nodiscard]] State state(const std::string& key, double now_s) const;
  /// Seconds until the next half-open probe is allowed (0 when not open).
  [[nodiscard]] double retry_after_s(const std::string& key,
                                     double now_s) const;
  [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
  [[nodiscard]] std::size_t open_count(double now_s) const;
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  struct Entry {
    int consecutive_failures = 0;
    double open_until_s = 0.0;
    bool open = false;
    bool probe_inflight = false;
  };

  Config cfg_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t trips_ = 0;
};

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

/// Seeded description of what the chaos harness breaks at the service
/// layer. Probabilities are per decision point; every decision is a pure
/// function of (seed, identity, attempt), never of wall time or thread
/// scheduling. Attempts and per-key builds at index >= max_faulty_attempts
/// are always clean, bounding the blast radius so every retryable query
/// completes within a finite retry budget.
struct ServiceFaultPlan {
  std::uint64_t seed = 0xC4A05C4A05ULL;
  double query_kill_p = 0.0;     // inject a rank kill into an attempt's run
  double query_corrupt_p = 0.0;  // arm message corruption for an attempt
  double corrupt_channel_p = 0.05;  // per-delivery corruption prob when armed
  double build_fail_p = 0.0;     // force an artifact build to throw
  double worker_kill_p = 0.0;    // kill the worker thread at dequeue
  /// Flip one bit of a freshly built cached artifact AFTER its checksum
  /// was taken — an in-memory silent corruption the read-path verifier
  /// (ArtifactCache Verify) must catch. Per-key publish index bounded by
  /// max_faulty_attempts, so quarantine + rebuild always converges.
  double artifact_flip_p = 0.0;
  int max_faulty_attempts = 2;   // attempts/builds past this are clean

  [[nodiscard]] bool empty() const noexcept {
    return query_kill_p <= 0.0 && query_corrupt_p <= 0.0 &&
           build_fail_p <= 0.0 && worker_kill_p <= 0.0 &&
           artifact_flip_p <= 0.0;
  }
};

/// Deterministic evaluator of a ServiceFaultPlan; safe to share across
/// worker threads (every method is a pure function of its arguments).
class ServiceFaultInjector {
 public:
  explicit ServiceFaultInjector(ServiceFaultPlan plan);

  [[nodiscard]] const ServiceFaultPlan& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] bool armed() const noexcept { return !plan_.empty(); }

  /// Inject engine-level faults (rank kill, message corruption) into the
  /// options of execution attempt `attempt` of the query with fingerprint
  /// `fp`. Injected kills are masked by the k-path failover when an intact
  /// phase group survives and surface as retryable typed errors otherwise;
  /// corruption is always masked by checksum retransmission (it costs
  /// modeled time, never data). Returns true when anything was injected.
  bool apply_engine_faults(core::MidasOptions& opt, std::uint64_t fp,
                           int attempt) const;

  /// Should build number `build_index` (0-based, per key) of artifact
  /// `key` be forced to fail?
  [[nodiscard]] bool should_fail_build(const std::string& key,
                                       std::uint64_t build_index) const;

  /// Should the worker die at global dequeue number `dequeue_index`?
  [[nodiscard]] bool should_kill_worker(std::uint64_t dequeue_index) const;

  /// Should publish number `publish_index` (0-based, per key) of artifact
  /// `key` be bit-flipped after checksumming?
  [[nodiscard]] bool should_flip_artifact(const std::string& key,
                                          std::uint64_t publish_index) const;

  /// Deterministic bit selector for the flip injected at (key,
  /// publish_index) — feeds ArtifactIntegrity<T>::flip_bit.
  [[nodiscard]] std::uint64_t artifact_flip_pick(
      const std::string& key, std::uint64_t publish_index) const;

 private:
  [[nodiscard]] std::uint64_t mix(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t tag) const noexcept;

  ServiceFaultPlan plan_;
};

}  // namespace midas::service
