// Typed queries, results, and errors of the batched detection service
// (docs/SERVICE.md).
//
// A QuerySpec is a self-contained description of one detection run — engine
// (k-path / k-tree / scan), graph (by registered name), field width,
// randomness seed, rank geometry — plus serving metadata (priority lane,
// optional deadline). Everything that affects the *answer* feeds the
// fingerprint; serving metadata deliberately does not, so two queries that
// differ only in lane or deadline deduplicate onto one execution.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/detect_par.hpp"
#include "core/detect_seq.hpp"
#include "runtime/fault.hpp"

namespace midas::service {

/// Base of every service-layer failure, so callers can catch the family.
class ServiceError : public std::runtime_error {
 public:
  explicit ServiceError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Admission rejected: the query's lane queue is full. The query was never
/// enqueued; in-flight work is unaffected. The error carries both lanes'
/// depths and the service's shed policy so load generators can implement
/// client-side backoff without a second stats() round-trip.
class ServiceOverloadError : public ServiceError {
 public:
  ServiceOverloadError(const std::string& lane,
                       std::size_t interactive_depth,
                       std::size_t batch_depth, std::size_t capacity,
                       const std::string& shed_policy)
      : ServiceError("service overloaded: " + lane + " queue full (" +
                     std::to_string(lane == "interactive" ? interactive_depth
                                                          : batch_depth) +
                     "/" + std::to_string(capacity) +
                     " queued; interactive=" +
                     std::to_string(interactive_depth) +
                     " batch=" + std::to_string(batch_depth) +
                     ", shed=" + shed_policy + ")"),
        interactive_depth_(interactive_depth),
        batch_depth_(batch_depth),
        capacity_(capacity),
        shed_policy_(shed_policy) {}

  [[nodiscard]] std::size_t interactive_depth() const noexcept {
    return interactive_depth_;
  }
  [[nodiscard]] std::size_t batch_depth() const noexcept {
    return batch_depth_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// "deadline-aware" when admission sheds infeasible deadlines, "none"
  /// when shedding is disabled.
  [[nodiscard]] const std::string& shed_policy() const noexcept {
    return shed_policy_;
  }

 private:
  std::size_t interactive_depth_;
  std::size_t batch_depth_;
  std::size_t capacity_;
  std::string shed_policy_;
};

/// The query's deadline passed before a worker could start it. The future
/// completes with this error; the worker pool keeps serving other queries.
class DeadlineExceededError : public ServiceError {
 public:
  DeadlineExceededError()
      : ServiceError("query deadline exceeded before execution started") {}
};

/// Admission rejected because the query's deadline is already infeasible:
/// the estimated queue wait (rolling mean execution time x queue depth
/// ahead / workers) exceeds the submitted timeout budget. Shedding at
/// submit keeps doomed work out of the queue entirely (docs/SERVICE.md).
class DeadlineInfeasibleError : public ServiceError {
 public:
  DeadlineInfeasibleError(double eta_s, double budget_s)
      : ServiceError("deadline infeasible at admission: estimated queue "
                     "wait " +
                     std::to_string(eta_s) + " s exceeds the " +
                     std::to_string(budget_s) + " s timeout budget"),
        eta_s_(eta_s),
        budget_s_(budget_s) {}
  [[nodiscard]] double eta_s() const noexcept { return eta_s_; }
  [[nodiscard]] double budget_s() const noexcept { return budget_s_; }

 private:
  double eta_s_;
  double budget_s_;
};

/// Fast-fail: the per-graph circuit breaker is open after consecutive
/// artifact-build failures. The query never touched the worker pool; try
/// again after the cooldown (a half-open probe re-tests the build path).
class CircuitOpenError : public ServiceError {
 public:
  CircuitOpenError(const std::string& graph, double retry_after_s)
      : ServiceError("circuit open for graph '" + graph +
                     "': artifact builds failing repeatedly; retry after " +
                     std::to_string(retry_after_s) + " s"),
        graph_(graph),
        retry_after_s_(retry_after_s) {}
  [[nodiscard]] const std::string& graph_name() const noexcept {
    return graph_;
  }
  [[nodiscard]] double retry_after_s() const noexcept {
    return retry_after_s_;
  }

 private:
  std::string graph_;
  double retry_after_s_;
};

/// submit() referenced a graph name never passed to add_graph().
class UnknownGraphError : public ServiceError {
 public:
  explicit UnknownGraphError(const std::string& name)
      : ServiceError("unknown graph: " + name) {}
};

/// Admission rejected: the QuerySpec itself is malformed (epsilon outside
/// (0, 1), negative max_rounds, bad rank geometry, ...). Typed so callers
/// can tell a bad request apart from serving failures, and carrying the
/// offending field name for programmatic handling. Raised at submit() —
/// a spec that would only blow up later (e.g. rounds_for_epsilon deriving
/// a nonsense round count inside a worker) never enters a queue.
class QueryValidationError : public ServiceError {
 public:
  QueryValidationError(const std::string& field, const std::string& what)
      : ServiceError("invalid query: " + field + ": " + what),
        field_(field) {}
  /// The QuerySpec field that failed validation ("epsilon", "max_rounds",
  /// "k", "field_bits", "n1", "n2", "tree_edges", "weights").
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

/// The service is shutting down; queued queries that will never run
/// complete with this error.
class ServiceShutdownError : public ServiceError {
 public:
  ServiceShutdownError()
      : ServiceError("service shut down before the query ran") {}
};

/// Per-query retry budget and backoff shape (service/resilience.hpp).
/// Retries apply only to failures classified retryable (injected faults,
/// rank deaths, transient artifact-build failures) — validation and other
/// caller bugs always surface immediately. Backoff for attempt a is
///   min(max_backoff_s, base_backoff_s * multiplier^(a-1))
/// scaled by a deterministic jitter drawn from (query fingerprint, a), so
/// a given query's retry schedule is identical across reruns.
struct RetryPolicy {
  int max_attempts = 0;        // total execution starts; 0 = inherit the
                               // service default, 1 = never retry
  double base_backoff_s = 1e-3;
  double multiplier = 2.0;
  double max_backoff_s = 0.1;
  double jitter = 0.5;         // +/- fraction of the backoff added

  [[nodiscard]] bool inherits() const noexcept { return max_attempts <= 0; }
};

enum class QueryType { kPath, kTree, kScan, kMotif };
enum class Lane { kInteractive, kBatch };

[[nodiscard]] inline const char* to_string(QueryType t) noexcept {
  switch (t) {
    case QueryType::kPath: return "path";
    case QueryType::kTree: return "tree";
    case QueryType::kScan: return "scan";
    case QueryType::kMotif: return "motif";
  }
  return "?";
}
[[nodiscard]] inline const char* to_string(Lane l) noexcept {
  return l == Lane::kInteractive ? "interactive" : "batch";
}

struct QuerySpec {
  QueryType type = QueryType::kPath;
  Lane lane = Lane::kBatch;
  std::string graph;  // name registered via DetectionService::add_graph

  // Detection parameters (core::MidasOptions analogs).
  int k = 4;
  int field_bits = 8;  // l: 8 runs GF(2^8), any other l in [2,16] GFSmall(l)
  double epsilon = 0.05;
  std::uint64_t seed = 1;
  int max_rounds = 0;  // > 0 overrides the epsilon-derived round count
  bool early_exit = true;
  core::Kernel kernel = core::Kernel::kAuto;

  // Rank geometry of the underlying SPMD run.
  int n_ranks = 2;
  int n1 = 2;
  std::uint32_t n2 = 16;

  // kTree only: the template as an edge list over vertices [0, k) plus the
  // decomposition root.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tree_edges;
  std::uint32_t tree_root = 0;

  // kScan only: one non-negative weight per graph vertex.
  std::vector<std::uint32_t> weights;

  // kMotif only: one color per graph vertex, and the queried color
  // multiset (its size is the subgraph size; k must equal motif.size()).
  std::vector<std::uint32_t> colors;
  std::vector<std::uint32_t> motif;

  // -- answer integrity (service/integrity.hpp, docs/INTEGRITY.md) --------
  /// Certified positives: on a "yes", peel an actual witness out of the
  /// graph and validate it exactly before answering. The witness rides in
  /// QueryResult::witness; certification failure (possible only when the
  /// "yes" itself was corrupt) is flagged and counted, never silent.
  bool certify = false;
  /// Adaptive re-amplification: when a "no" answer ran fewer rounds than
  /// its epsilon target needs (max_rounds capped the run), top up with the
  /// missing rounds under a derived seed. Can flip "no" to "yes", so it is
  /// part of the answer fingerprint.
  bool reamplify = false;

  // Serving metadata (excluded from the fingerprint). timeout_s > 0 arms a
  // deadline measured from submit(): a query still queued when it expires
  // completes with DeadlineExceededError instead of running, and admission
  // may shed it up front with DeadlineInfeasibleError when the estimated
  // queue wait already exceeds the budget.
  double timeout_s = 0.0;
  // Per-query retry policy; max_attempts = 0 inherits the service default
  // (ServiceOptions::retry). Serving metadata: excluded from the
  // fingerprint, so deduped queries share one retried execution.
  RetryPolicy retry{};

  [[nodiscard]] int rounds() const {
    return max_rounds > 0 ? max_rounds
                          : core::rounds_for_epsilon(epsilon);
  }
};

/// Identity of a query's *answer*: every field that feeds the engine, and
/// nothing that only affects serving. Identical fingerprints on the same
/// service are the dedup condition — and also the artifact-sharing
/// condition the cache keys build on.
[[nodiscard]] inline std::uint64_t query_fingerprint(const QuerySpec& q) {
  std::vector<std::uint64_t> w;
  w.reserve(16 + q.graph.size() + q.tree_edges.size() + q.weights.size());
  w.push_back(static_cast<std::uint64_t>(q.type));
  for (char c : q.graph) w.push_back(static_cast<std::uint64_t>(c));
  w.push_back(static_cast<std::uint64_t>(q.k));
  w.push_back(static_cast<std::uint64_t>(q.field_bits));
  std::uint64_t eps_bits = 0;
  std::memcpy(&eps_bits, &q.epsilon, sizeof(eps_bits));
  w.push_back(eps_bits);
  w.push_back(q.seed);
  w.push_back(static_cast<std::uint64_t>(q.max_rounds));
  w.push_back(q.early_exit ? 1 : 0);
  w.push_back(static_cast<std::uint64_t>(q.kernel));
  w.push_back(static_cast<std::uint64_t>(q.n_ranks));
  w.push_back(static_cast<std::uint64_t>(q.n1));
  w.push_back(q.n2);
  w.push_back(static_cast<std::uint64_t>(q.tree_root));
  w.push_back((q.certify ? 1u : 0u) | (q.reamplify ? 2u : 0u));
  for (const auto& [a, b] : q.tree_edges)
    w.push_back((static_cast<std::uint64_t>(a) << 32) | b);
  for (std::uint32_t x : q.weights) w.push_back(x);
  // Length-prefix the colors so (colors, motif) concatenations of
  // different splits cannot collide.
  w.push_back(q.colors.size());
  for (std::uint32_t x : q.colors) w.push_back(x);
  for (std::uint32_t x : q.motif) w.push_back(x);
  return runtime::fnv1a(std::as_bytes(std::span<const std::uint64_t>(w)));
}

/// One query's answer plus serving telemetry. Path/tree queries fill
/// `found`/`found_round`; scan queries fill `table`.
struct QueryResult {
  bool found = false;
  int rounds_run = 0;
  int found_round = -1;
  core::FeasibilityTable table;  // scan only; empty otherwise

  double vtime = 0.0;        // modeled parallel makespan of the engine run
  double engine_wall_s = 0.0;  // host wall-clock inside the engine
  double queue_s = 0.0;        // submit -> execution start
  double total_s = 0.0;        // submit -> completion

  // Resilience telemetry (service/resilience.hpp): how many execution
  // starts (first attempt + retries + hedges) this answer consumed, and
  // whether a hedged re-execution beat the original straggler to it.
  int attempts = 1;
  bool hedge_won = false;

  // -- answer integrity (service/integrity.hpp) ---------------------------
  /// The failure bound this query asked for (epsilon, or implied by an
  /// explicit max_rounds) and the bound the rounds actually run achieve:
  /// 0 for a "yes" (one-sided error — a yes is never wrong), (4/5)^rounds
  /// for a "no". Only rounds of the successful attempt count; rounds lost
  /// to faults or aborted attempts never inflate the claim.
  double target_epsilon = 0.0;
  double achieved_epsilon = 0.0;
  /// Extra rounds a reamplify top-up ran (0 when none was needed).
  int reamp_rounds = 0;
  /// certify-mode outcome: the exactly-validated witness. For path/tree, a
  /// vertex sequence / template->graph map; for scan, the vertex set of
  /// the certified (witness_j, witness_z) cell. certified == false with
  /// found == true means certification FAILED — the "yes" could not be
  /// backed by a real subgraph (counted + quarantined service-side).
  bool certified = false;
  std::vector<graph::VertexId> witness;
  int witness_j = 0;
  std::uint32_t witness_z = 0;
};

}  // namespace midas::service
