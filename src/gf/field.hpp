// Field concepts shared by the finite-field implementations.
//
// MIDAS evaluates polynomials over GF(2^l) with l = 3 + ceil(log2 k)
// (Williams' refinement) or over the integer ring Z / 2^{k+1} Z (Koutis'
// original). Both expose the same instance interface so the detection
// kernels are written once and instantiated per algebra. Field objects are
// cheap to copy (a pointer to shared tables at most) and all operations are
// const, so one instance can be shared across ranks/threads.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace midas::gf {

/// An algebra usable by the multilinear detection kernels: value_type is an
/// unsigned integer type; zero/one are the additive and multiplicative
/// identities; add and mul the ring operations. Addition must make every
/// element 2-torsion-friendly in the sense the detection math requires
/// (char 2 for the GF types; mod 2^{k+1} for the Koutis ring).
template <typename F>
concept DetectionAlgebra =
    std::copyable<F> &&
    requires(const F f, typename F::value_type a, typename F::value_type b) {
      typename F::value_type;
      requires std::unsigned_integral<typename F::value_type>;
      { f.zero() } -> std::same_as<typename F::value_type>;
      { f.one() } -> std::same_as<typename F::value_type>;
      { f.add(a, b) } -> std::same_as<typename F::value_type>;
      { f.mul(a, b) } -> std::same_as<typename F::value_type>;
    };

/// A DetectionAlgebra that is also a field (has inverses) — true for the
/// GF(2^l) types, false for Z / 2^{k+1} Z.
template <typename F>
concept GaloisField =
    DetectionAlgebra<F> && requires(const F f, typename F::value_type a) {
      { f.inv(a) } -> std::same_as<typename F::value_type>;
    };

/// dst[q] += s * src[q] for a loop-invariant scalar s. Dispatches to the
/// field's dedicated row primitive when it has one (GFSmall::scale_add,
/// GF256::axpy — one log lookup for the whole row) and falls back to a
/// mul/add loop otherwise. dst and src must not overlap.
template <DetectionAlgebra F>
void scale_add_row(const F& f, typename F::value_type* dst,
                   typename F::value_type s,
                   const typename F::value_type* src, std::size_t n) {
  if constexpr (requires { f.scale_add(dst, s, src, n); }) {
    f.scale_add(dst, s, src, n);
  } else if constexpr (requires { f.axpy(dst, s, src, n); }) {
    f.axpy(dst, s, src, n);
  } else {
    if (s == f.zero()) return;
    for (std::size_t q = 0; q < n; ++q)
      dst[q] = f.add(dst[q], f.mul(s, src[q]));
  }
}

/// dst[q] += a[q] * b[q], via the field's pointwise primitive when present.
template <DetectionAlgebra F>
void mul_add_rows(const F& f, typename F::value_type* dst,
                  const typename F::value_type* a,
                  const typename F::value_type* b, std::size_t n) {
  if constexpr (requires { f.mul_add_pointwise(dst, a, b, n); }) {
    f.mul_add_pointwise(dst, a, b, n);
  } else {
    for (std::size_t q = 0; q < n; ++q)
      dst[q] = f.add(dst[q], f.mul(a[q], b[q]));
  }
}

/// Exponentiation by squaring, valid for any DetectionAlgebra.
template <DetectionAlgebra F>
[[nodiscard]] constexpr typename F::value_type pow(const F& f,
                                                   typename F::value_type a,
                                                   std::uint64_t e) {
  typename F::value_type acc = f.one();
  typename F::value_type base = a;
  while (e != 0) {
    if (e & 1u) acc = f.mul(acc, base);
    base = f.mul(base, base);
    e >>= 1;
  }
  return acc;
}

}  // namespace midas::gf
