// GF(2^64) via carry-less multiplication.
//
// Not used by the core MIDAS loop (one byte suffices), but provided for
// property tests that want negligible Schwartz–Zippel failure probability
// and for users detecting very large multilinear structures.
#pragma once

#include <cstdint>

#include "gf/field.hpp"
#include "gf/polynomials.hpp"

namespace midas::gf {

class GF64 {
 public:
  using value_type = std::uint64_t;

  [[nodiscard]] constexpr value_type zero() const noexcept { return 0; }
  [[nodiscard]] constexpr value_type one() const noexcept { return 1; }
  [[nodiscard]] constexpr int bits() const noexcept { return 64; }

  [[nodiscard]] constexpr value_type add(value_type a,
                                         value_type b) const noexcept {
    return a ^ b;
  }

  [[nodiscard]] constexpr value_type mul(value_type a,
                                         value_type b) const noexcept {
    unsigned __int128 prod = clmul64(a, b);
    // Reduce modulo x^64 + x^4 + x^3 + x + 1. Two folding steps suffice
    // because deg(poly_low) = 4 < 32.
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 64);
    std::uint64_t lo = static_cast<std::uint64_t>(prod);
    unsigned __int128 fold = clmul64(hi, kGF64PolyLow);
    hi = static_cast<std::uint64_t>(fold >> 64);
    lo ^= static_cast<std::uint64_t>(fold);
    lo ^= static_cast<std::uint64_t>(clmul64(hi, kGF64PolyLow));
    return lo;
  }

  /// Multiplicative inverse via a^(2^64 - 2); precondition a != 0.
  [[nodiscard]] constexpr value_type inv(value_type a) const noexcept {
    // 2^64 - 2 = 0xFFFFFFFFFFFFFFFE.
    value_type acc = 1;
    value_type base = a;
    std::uint64_t e = ~0ULL - 1;
    while (e != 0) {
      if (e & 1u) acc = mul(acc, base);
      base = mul(base, base);
      e >>= 1;
    }
    return acc;
  }
};

static_assert(GaloisField<GF64>);

}  // namespace midas::gf
