// GF(2^8) with compile-time log/antilog tables.
//
// This is MIDAS's default field: Williams' refinement uses GF(2^l) with
// l = 3 + ceil(log2 k), so every subgraph size up to k = 32 fits in one
// byte. One-byte values are exactly the cache-friendly layout the paper's
// Section IV-B exploits: a vertex's N2-iteration batch is a contiguous run
// of N2 bytes.
#pragma once

#include <array>
#include <cstdint>

#include "gf/polynomials.hpp"

namespace midas::gf {

namespace detail256 {

/// Multiply in GF(2^8) by shift-and-reduce (used only to build the tables).
constexpr std::uint8_t slow_mul(std::uint8_t a, std::uint8_t b) {
  std::uint32_t acc = 0;
  std::uint32_t aa = a;
  for (int i = 0; i < 8; ++i) {
    if (b & (1u << i)) acc ^= aa << i;
  }
  // Reduce modulo x^8 + x^4 + x^3 + x + 1.
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1u << bit)) acc ^= irreducible_poly(8) << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

struct Tables {
  // exp_ has 510 entries so mul can index log[a]+log[b] without a mod.
  std::array<std::uint8_t, 510> exp{};
  std::array<std::uint8_t, 256> log{};
};

constexpr Tables build_tables() {
  Tables t{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.exp[static_cast<std::size_t>(i) + 255] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = slow_mul(x, 0x03);  // 0x03 generates GF(2^8)* for the AES polynomial
  }
  return t;
}

inline constexpr Tables kTables = build_tables();

}  // namespace detail256

/// GF(2^8), stateless; all operations are table lookups.
class GF256 {
 public:
  using value_type = std::uint8_t;

  [[nodiscard]] constexpr value_type zero() const noexcept { return 0; }
  [[nodiscard]] constexpr value_type one() const noexcept { return 1; }
  [[nodiscard]] constexpr int bits() const noexcept { return 8; }
  /// The AES modulus the tables were built over (leading bit included);
  /// lets BitslicedGF mirror this field exactly.
  [[nodiscard]] constexpr std::uint32_t modulus() const noexcept {
    return irreducible_poly(8);
  }

  [[nodiscard]] constexpr value_type add(value_type a,
                                         value_type b) const noexcept {
    return a ^ b;
  }

  [[nodiscard]] constexpr value_type mul(value_type a,
                                         value_type b) const noexcept {
    if (a == 0 || b == 0) return 0;
    const auto& t = detail256::kTables;
    return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
  }

  /// Multiplicative inverse; precondition a != 0.
  [[nodiscard]] constexpr value_type inv(value_type a) const noexcept {
    const auto& t = detail256::kTables;
    return t.exp[255 - t.log[a]];
  }

  /// dst[q] += a[q] * b[q] for q in [0, n) — the hot loop of the batched
  /// (N2-wide) polynomial evaluation.
  void mul_add_pointwise(value_type* dst, const value_type* a,
                         const value_type* b, std::size_t n) const noexcept {
    const auto& t = detail256::kTables;
    for (std::size_t q = 0; q < n; ++q) {
      if (a[q] != 0 && b[q] != 0)
        dst[q] ^= t.exp[static_cast<std::size_t>(t.log[a[q]]) + t.log[b[q]]];
    }
  }

  /// dst[q] += s * b[q] for a scalar s — used when a vertex's base value is
  /// constant across the batch.
  void axpy(value_type* dst, value_type s, const value_type* b,
            std::size_t n) const noexcept {
    if (s == 0) return;
    const auto& t = detail256::kTables;
    const std::size_t ls = t.log[s];
    for (std::size_t q = 0; q < n; ++q) {
      if (b[q] != 0) dst[q] ^= t.exp[ls + t.log[b[q]]];
    }
  }
};

}  // namespace midas::gf
