// Registry of irreducible polynomials over GF(2) used as field moduli.
//
// For GF(2^l) the modulus is a degree-l polynomial irreducible over GF(2),
// stored with the leading bit included (e.g. x^8+x^4+x^3+x+1 -> 0x11B).
// These are the standard Conway/low-weight choices.
#pragma once

#include <cstdint>

#include "util/require.hpp"

namespace midas::gf {

/// Irreducible modulus for GF(2^l), 1 <= l <= 16, leading bit included.
[[nodiscard]] constexpr std::uint32_t irreducible_poly(int l) {
  constexpr std::uint32_t kPolys[17] = {
      0,       // unused
      0x3,     // x + 1
      0x7,     // x^2 + x + 1
      0xB,     // x^3 + x + 1
      0x13,    // x^4 + x + 1
      0x25,    // x^5 + x^2 + 1
      0x43,    // x^6 + x + 1
      0x83,    // x^7 + x + 1
      0x11B,   // x^8 + x^4 + x^3 + x + 1 (AES polynomial)
      0x203,   // x^9 + x + 1
      0x409,   // x^10 + x^3 + 1
      0x805,   // x^11 + x^2 + 1
      0x1053,  // x^12 + x^6 + x^4 + x + 1
      0x201B,  // x^13 + x^4 + x^3 + x + 1
      0x4143,  // x^14 + x^8 + x^6 + x + 1
      0x8003,  // x^15 + x + 1
      0x1002D  // x^16 + x^5 + x^3 + x^2 + 1
  };
  MIDAS_REQUIRE(l >= 1 && l <= 16, "irreducible_poly supports l in [1,16]");
  return kPolys[l];
}

/// Modulus for GF(2^64): x^64 + x^4 + x^3 + x + 1, low part only (the x^64
/// term is implicit in the reduction routine).
inline constexpr std::uint64_t kGF64PolyLow = 0x1BULL;

/// Carry-less (polynomial over GF(2)) multiplication of two 64-bit
/// polynomials, 128-bit result. Portable shift-and-add implementation.
[[nodiscard]] constexpr unsigned __int128 clmul64(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  unsigned __int128 acc = 0;
  unsigned __int128 aa = a;
  while (b != 0) {
    acc ^= aa * static_cast<unsigned __int128>(b & 1u);
    aa <<= 1;
    b >>= 1;
  }
  return acc;
}

}  // namespace midas::gf
