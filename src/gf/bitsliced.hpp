// Bit-sliced GF(2^l) arithmetic: 64 iteration-lanes per machine word.
//
// The detection kernels evaluate the same polynomial once per iteration
// t in [0, 2^k), with per-element GF(2^l) log/antilog lookups. Since l <= 16
// and GF(2^l) addition is XOR, the algebra bit-slices perfectly: a *block*
// holds one GF(2^l) value for each of W = 64 consecutive iterations as l
// 64-bit bit-planes (word p carries bit p of all 64 lane values). Then
//
//  * lane-wise addition is l XORs (vs 64 scalar XORs),
//  * multiplication by a constant c is the l x l binary matrix of c over
//    the polynomial basis — built with l shift/XOR (xtime) steps, applied
//    with ~l^2/2 word-XORs, amortized over all 64 lanes,
//  * full lane-wise multiplication is schoolbook plane convolution plus a
//    sparse modulus reduction (~l^2 AND/XOR + l*wt(poly) XOR),
//  * the liveness indicator [<v_i, t> = 0] over a 64-iteration block is a
//    single 64-bit parity mask: with a 64-aligned block base, t = base | b,
//    so parity(v & t) = parity(v & base) ^ parity(v & b) — a fixed
//    per-vertex pattern over the low 6 bits of t plus one parity flip per
//    block from the high bits.
//
// This is the characteristic-2 sieving layout of Björklund–Kaski–Kowalik
// and the GF(2^l)-evaluation framing of Abasi–Bshouty, specialized to the
// MIDAS inner loops (see docs/ALGORITHM.md section 6).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "gf/field.hpp"
#include "gf/polynomials.hpp"

namespace midas::gf {

/// A field usable by the bit-sliced kernels: exposes its modulus polynomial
/// (leading bit included) so BitslicedGF can mirror its arithmetic exactly.
/// GF256 and GFSmall qualify; GF64 (l = 64 > 16) and ZMod2e do not.
template <typename F>
concept Bitsliceable = GaloisField<F> && requires(const F f) {
  { f.modulus() } -> std::convertible_to<std::uint32_t>;
  { f.bits() } -> std::convertible_to<int>;
};

namespace detail_bs {

/// kLowParity[w] bit b = parity(w & b) for b in [0, 64): the fixed
/// contribution of the low 6 bits of t to <v, t>, indexed by v & 63.
constexpr std::array<std::uint64_t, 64> build_low_parity() {
  std::array<std::uint64_t, 64> t{};
  for (unsigned w = 0; w < 64; ++w) {
    std::uint64_t m = 0;
    for (unsigned b = 0; b < 64; ++b)
      if (std::popcount(w & b) & 1u) m |= std::uint64_t{1} << b;
    t[w] = m;
  }
  return t;
}

inline constexpr std::array<std::uint64_t, 64> kLowParity = build_low_parity();

/// Lift a runtime width l in [2, 16] to a compile-time constant: calls
/// fn(std::integral_constant<int, l>{}) so the kernel body it wraps is
/// instantiated once per width with fully unrollable loops.
template <typename Fn>
decltype(auto) dispatch_width(int l, Fn&& fn) {
  switch (l) {
    case 2: return fn(std::integral_constant<int, 2>{});
    case 3: return fn(std::integral_constant<int, 3>{});
    case 4: return fn(std::integral_constant<int, 4>{});
    case 5: return fn(std::integral_constant<int, 5>{});
    case 6: return fn(std::integral_constant<int, 6>{});
    case 7: return fn(std::integral_constant<int, 7>{});
    case 8: return fn(std::integral_constant<int, 8>{});
    case 9: return fn(std::integral_constant<int, 9>{});
    case 10: return fn(std::integral_constant<int, 10>{});
    case 11: return fn(std::integral_constant<int, 11>{});
    case 12: return fn(std::integral_constant<int, 12>{});
    case 13: return fn(std::integral_constant<int, 13>{});
    case 14: return fn(std::integral_constant<int, 14>{});
    case 15: return fn(std::integral_constant<int, 15>{});
    default: return fn(std::integral_constant<int, 16>{});
  }
}

}  // namespace detail_bs

/// Bit-sliced GF(2^l) engine over 64-lane blocks. A block is `words() == l`
/// consecutive std::uint64_t: word p is bit-plane p of the 64 lane values.
/// Stateless apart from (l, modulus); cheap to copy.
class BitslicedGF {
 public:
  static constexpr int kLanes = 64;
  using word = std::uint64_t;
  using value_type = std::uint16_t;

  /// Construct the engine for GF(2^l) with the given modulus polynomial
  /// (leading bit included, as in irreducible_poly). Throws unless
  /// 2 <= l <= 16 and the modulus has degree exactly l.
  BitslicedGF(int l, std::uint32_t modulus);

  /// Mirror the arithmetic of an existing field instance.
  template <Bitsliceable F>
  explicit BitslicedGF(const F& f)
      : BitslicedGF(f.bits(), static_cast<std::uint32_t>(f.modulus())) {}

  [[nodiscard]] int bits() const noexcept { return l_; }
  [[nodiscard]] std::uint32_t modulus() const noexcept { return poly_; }
  /// Words per 64-lane block (== bits()).
  [[nodiscard]] int words() const noexcept { return l_; }

  // --- block primitives -----------------------------------------------

  void clear(word* x) const noexcept {
    for (int p = 0; p < l_; ++p) x[p] = 0;
  }

  [[nodiscard]] bool is_zero(const word* x) const noexcept {
    word any = 0;
    for (int p = 0; p < l_; ++p) any |= x[p];
    return any == 0;
  }

  /// dst ^= src, lane-wise field addition of whole blocks.
  void add_into(word* dst, const word* src) const noexcept {
    for (int p = 0; p < l_; ++p) dst[p] ^= src[p];
  }

  /// dst ^= src with only the lanes of `lane_mask` contributing.
  void masked_add_into(word* dst, const word* src,
                       word lane_mask) const noexcept {
    for (int p = 0; p < l_; ++p) dst[p] ^= src[p] & lane_mask;
  }

  /// dst = the scalar c in every lane of `lane_mask`, zero elsewhere.
  void broadcast(word* dst, value_type c, word lane_mask) const noexcept {
    for (int p = 0; p < l_; ++p)
      dst[p] = ((c >> p) & 1u) ? lane_mask : 0;
  }

  /// Zero every lane outside `lane_mask`.
  void mask_block(word* x, word lane_mask) const noexcept {
    for (int p = 0; p < l_; ++p) x[p] &= lane_mask;
  }

  // --- multiplication ---------------------------------------------------

  /// The multiply-by-constant matrix of c: row[p] = c * x^p. Built with l
  /// xtime (shift/conditional-XOR) steps; apply with mul_matrix.
  struct Matrix {
    std::array<value_type, 16> row;
  };

  [[nodiscard]] Matrix matrix(value_type c) const noexcept {
    Matrix m{};
    std::uint32_t x = c;
    for (int p = 0; p < l_; ++p) {
      m.row[static_cast<std::size_t>(p)] = static_cast<value_type>(x);
      x <<= 1;
      if (x & (1u << l_)) x ^= poly_;
    }
    return m;
  }

  /// dst = M * src lane-wise (dst must not alias src): output plane q is
  /// the XOR of the input planes p with bit q set in row[p].
  void mul_matrix(word* dst, const Matrix& m, const word* src) const noexcept {
    for (int q = 0; q < l_; ++q) dst[q] = 0;
    for (int p = 0; p < l_; ++p) {
      const word s = src[p];
      if (s == 0) continue;
      std::uint32_t r = m.row[static_cast<std::size_t>(p)];
      while (r != 0) {
        dst[std::countr_zero(r)] ^= s;
        r &= r - 1;
      }
    }
  }

  /// dst = a * b lane-wise (dst must not alias a or b): schoolbook plane
  /// convolution into 2l-1 planes, then modulus reduction plane by plane.
  void mul(word* dst, const word* a, const word* b) const noexcept {
    word tmp[2 * 16 - 1] = {};
    for (int p = 0; p < l_; ++p) {
      const word ap = a[p];
      if (ap == 0) continue;
      for (int q = 0; q < l_; ++q) tmp[p + q] ^= ap & b[q];
    }
    for (int s = 2 * l_ - 2; s >= l_; --s) {
      const word x = tmp[s];
      if (x == 0) continue;
      std::uint32_t r = low_;  // poly minus the leading term
      while (r != 0) {
        tmp[s - l_ + std::countr_zero(r)] ^= x;
        r &= r - 1;
      }
    }
    for (int p = 0; p < l_; ++p) dst[p] = tmp[p];
  }

  // --- folding and lane access -----------------------------------------

  /// XOR of all 64 lane values: bit p of the result is the parity of
  /// plane p. This is how a block folds into the round accumulator.
  [[nodiscard]] value_type fold_xor(const word* x) const noexcept {
    value_type out = 0;
    for (int p = 0; p < l_; ++p)
      out = static_cast<value_type>(
          out | ((std::popcount(x[p]) & 1) << p));
    return out;
  }

  /// XOR of the lanes selected by `lane_mask` only.
  [[nodiscard]] value_type fold_xor(const word* x,
                                    word lane_mask) const noexcept {
    value_type out = 0;
    for (int p = 0; p < l_; ++p)
      out = static_cast<value_type>(
          out | ((std::popcount(x[p] & lane_mask) & 1) << p));
    return out;
  }

  [[nodiscard]] value_type lane(const word* x, int b) const noexcept {
    value_type out = 0;
    for (int p = 0; p < l_; ++p)
      out = static_cast<value_type>(out | (((x[p] >> b) & 1u) << p));
    return out;
  }

  /// Scatter `lanes` scalar values into a block's bit-planes (lanes beyond
  /// the count are cleared). Used to rebuild ghost blocks from the scalar
  /// halo payload.
  template <typename Vt>
  void pack_lanes(word* block, const Vt* vals, int lanes) const noexcept {
    clear(block);
    for (int b = 0; b < lanes; ++b) {
      std::uint32_t x = vals[b];
      while (x != 0) {
        block[std::countr_zero(x)] |= word{1} << b;
        x &= x - 1;
      }
    }
  }

  /// Gather `lanes` scalar values out of a block's bit-planes. Used to
  /// serialize boundary blocks into the scalar halo payload.
  template <typename Vt>
  void unpack_lanes(Vt* vals, const word* block, int lanes) const noexcept {
    for (int b = 0; b < lanes; ++b) vals[b] = static_cast<Vt>(lane(block, b));
  }

  void set_lane(word* x, int b, value_type v) const noexcept {
    const word bit = word{1} << b;
    for (int p = 0; p < l_; ++p) {
      if ((v >> p) & 1u)
        x[p] |= bit;
      else
        x[p] &= ~bit;
    }
  }

  // --- compile-time-width fast paths ------------------------------------
  //
  // Same semantics as the runtime-width methods above, with the plane count
  // as a template parameter so the inner loops fully unroll and vectorize
  // (the runtime-bound loops keep the accumulator in stack memory and defeat
  // SIMD). Hot kernels dispatch on words() once per run via
  // detail_bs::dispatch_width and use these in the per-block loops.

  template <int L>
  static void clear_w(word* x) noexcept {
    for (int p = 0; p < L; ++p) x[p] = 0;
  }

  template <int L>
  static void add_into_w(word* dst, const word* src) noexcept {
    for (int p = 0; p < L; ++p) dst[p] ^= src[p];
  }

  template <int L>
  static void broadcast_w(word* dst, value_type c, word lane_mask) noexcept {
    for (int p = 0; p < L; ++p) dst[p] = ((c >> p) & 1u) ? lane_mask : 0;
  }

  template <int L>
  static void mask_block_w(word* x, word lane_mask) noexcept {
    for (int p = 0; p < L; ++p) x[p] &= lane_mask;
  }

  /// dst = (M * src) & lane_mask, branch-free: every (p, q) pair contributes
  /// src[p] under an all-ones/all-zeros mask derived from bit q of row[p].
  template <int L>
  static void mul_matrix_masked_w(word* dst, const Matrix& m, const word* src,
                                  word lane_mask) noexcept {
    word out[L] = {};
    for (int p = 0; p < L; ++p) {
      const word s = src[p];
      const std::uint32_t r = m.row[static_cast<std::size_t>(p)];
      for (int q = 0; q < L; ++q)
        out[q] ^= s & (word{0} - static_cast<word>((r >> q) & 1u));
    }
    for (int q = 0; q < L; ++q) dst[q] = out[q] & lane_mask;
  }

  template <int L>
  [[nodiscard]] static bool is_zero_w(const word* x) noexcept {
    word any = 0;
    for (int p = 0; p < L; ++p) any |= x[p];
    return any == 0;
  }

  /// Fixed-width lane-wise multiply: the branch-free plane convolution
  /// vectorizes; only the sparse modulus reduction keeps a bit loop.
  template <int L>
  void mul_w(word* dst, const word* a, const word* b) const noexcept {
    word tmp[2 * L - 1] = {};
    for (int p = 0; p < L; ++p) {
      const word ap = a[p];
      for (int q = 0; q < L; ++q) tmp[p + q] ^= ap & b[q];
    }
    for (int s = 2 * L - 2; s >= L; --s) {
      const word x = tmp[s];
      if (x == 0) continue;
      std::uint32_t r = low_;
      while (r != 0) {
        tmp[s - L + std::countr_zero(r)] ^= x;
        r &= r - 1;
      }
    }
    for (int p = 0; p < L; ++p) dst[p] = tmp[p];
  }

  template <int L>
  [[nodiscard]] static value_type fold_xor_w(const word* x) noexcept {
    value_type out = 0;
    for (int p = 0; p < L; ++p)
      out = static_cast<value_type>(out | ((std::popcount(x[p]) & 1) << p));
    return out;
  }

  // --- liveness ---------------------------------------------------------

  /// Lane mask of live iterations for vertex vector `v` over the block
  /// [base, base + lanes): bit b is set iff <v, base + b> = 0 over GF(2).
  /// With a 64-aligned base this is the fixed low-bit parity pattern of v,
  /// complemented once per block by the high-bit parity; unaligned bases
  /// (an N2 phase boundary that is not a multiple of 64) fall back to one
  /// popcount per lane. Lanes >= `lanes` are always cleared.
  [[nodiscard]] static word live_mask(std::uint32_t v, std::uint64_t base,
                                      int lanes) noexcept {
    word live;
    if ((base & 63u) == 0) {
      const word pattern = detail_bs::kLowParity[v & 63u];
      const bool odd_base =
          (std::popcount((v >> 6) & static_cast<std::uint32_t>(base >> 6)) &
           1) != 0;
      live = odd_base ? pattern : ~pattern;
    } else {
      live = 0;
      for (int b = 0; b < lanes; ++b) {
        const auto t = static_cast<std::uint32_t>(base) +
                       static_cast<std::uint32_t>(b);
        if ((std::popcount(v & t) & 1) == 0) live |= word{1} << b;
      }
    }
    if (lanes < kLanes) live &= (word{1} << lanes) - 1;
    return live;
  }

 private:
  int l_;
  std::uint32_t poly_;  // modulus with the leading bit included
  std::uint32_t low_;   // modulus minus the leading term
};

}  // namespace midas::gf
