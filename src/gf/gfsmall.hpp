// GF(2^l) for runtime-chosen l in [2, 16], via shared log/antilog tables.
//
// MIDAS uses l = 3 + ceil(log2 k); this class lets the detection kernels be
// exercised over every admissible field width (tests sweep l), and supports
// l in [9, 16] when extra Schwartz–Zippel headroom is wanted. Tables for a
// given l are built once per process and shared; a GFSmall value is a
// pointer plus the width, so it is cheap to copy into every rank.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gf/polynomials.hpp"

namespace midas::gf {

class GFSmall {
 public:
  using value_type = std::uint16_t;

  /// Construct the field GF(2^l). Throws std::invalid_argument unless
  /// 2 <= l <= 16.
  explicit GFSmall(int l);

  [[nodiscard]] value_type zero() const noexcept { return 0; }
  [[nodiscard]] value_type one() const noexcept { return 1; }
  [[nodiscard]] int bits() const noexcept { return l_; }
  /// Number of field elements, 2^l.
  [[nodiscard]] std::uint32_t order() const noexcept { return 1u << l_; }
  /// The irreducible modulus polynomial (leading bit included) the tables
  /// were built over; lets BitslicedGF mirror this field exactly.
  [[nodiscard]] std::uint32_t modulus() const noexcept {
    return irreducible_poly(l_);
  }

  [[nodiscard]] value_type add(value_type a, value_type b) const noexcept {
    return a ^ b;
  }

  [[nodiscard]] value_type mul(value_type a, value_type b) const noexcept {
    if (a == 0 || b == 0) return 0;
    return tables_->exp[static_cast<std::size_t>(tables_->log[a]) +
                        tables_->log[b]];
  }

  /// Multiplicative inverse; precondition a != 0.
  [[nodiscard]] value_type inv(value_type a) const noexcept {
    return tables_->exp[order() - 1 - tables_->log[a]];
  }

  /// dst[q] += a[q] * b[q] for q in [0, n).
  void mul_add_pointwise(value_type* dst, const value_type* a,
                         const value_type* b, std::size_t n) const noexcept {
    for (std::size_t q = 0; q < n; ++q) {
      if (a[q] != 0 && b[q] != 0)
        dst[q] ^= tables_->exp[static_cast<std::size_t>(tables_->log[a[q]]) +
                               tables_->log[b[q]]];
    }
  }

  /// dst[q] += s * b[q] for q in [0, n): the loop-invariant scalar's log is
  /// looked up once, leaving one table access per nonzero element.
  void scale_add(value_type* dst, value_type s, const value_type* b,
                 std::size_t n) const noexcept {
    if (s == 0) return;
    const std::size_t log_s = tables_->log[s];
    for (std::size_t q = 0; q < n; ++q) {
      if (b[q] != 0) dst[q] ^= tables_->exp[log_s + tables_->log[b[q]]];
    }
  }

 private:
  struct Tables {
    std::vector<value_type> exp;  // 2*(order-1) entries: index without mod
    std::vector<value_type> log;  // order entries; log[0] unused
  };

  static const Tables* tables_for(int l);

  int l_;
  const Tables* tables_;
};

}  // namespace midas::gf
