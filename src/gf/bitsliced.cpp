#include "gf/bitsliced.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace midas::gf {

BitslicedGF::BitslicedGF(int l, std::uint32_t modulus) : l_(l), poly_(modulus) {
  if (l < 2 || l > 16)
    throw std::invalid_argument("BitslicedGF: l must be in [2, 16], got " +
                                std::to_string(l));
  if (modulus == 0 || static_cast<int>(std::bit_width(modulus)) != l + 1)
    throw std::invalid_argument(
        "BitslicedGF: modulus must have degree exactly l");
  low_ = poly_ ^ (1u << l_);
}

}  // namespace midas::gf
