#include "gf/gfsmall.hpp"

#include <array>
#include <mutex>

#include "gf/polynomials.hpp"
#include "util/require.hpp"

namespace midas::gf {

namespace {

/// Shift-and-reduce multiply used only while building the tables.
std::uint32_t slow_mul(std::uint32_t a, std::uint32_t b, int l,
                       std::uint32_t poly) {
  std::uint32_t acc = 0;
  for (int i = 0; i < l; ++i) {
    if (b & (1u << i)) acc ^= a << i;
  }
  for (int bit = 2 * l - 2; bit >= l; --bit) {
    if (acc & (1u << bit)) acc ^= poly << (bit - l);
  }
  return acc;
}

/// Find a multiplicative generator of GF(2^l)* by trial: an element g is a
/// generator iff its powers enumerate all 2^l - 1 nonzero elements. Field
/// sizes here are tiny (<= 65536), so brute force is fine and runs once.
std::uint32_t find_generator(int l, std::uint32_t poly) {
  const std::uint32_t order = (1u << l) - 1;
  for (std::uint32_t g = 2; g < (1u << l); ++g) {
    std::uint32_t x = 1;
    std::uint32_t steps = 0;
    do {
      x = slow_mul(x, g, l, poly);
      ++steps;
    } while (x != 1);
    if (steps == order) return g;
  }
  MIDAS_REQUIRE(false, "no generator found (field construction bug)");
  return 0;
}

}  // namespace

GFSmall::GFSmall(int l) : l_(l), tables_(tables_for(l)) {}

const GFSmall::Tables* GFSmall::tables_for(int l) {
  MIDAS_REQUIRE(l >= 2 && l <= 16, "GFSmall supports l in [2,16]");
  static std::array<std::unique_ptr<Tables>, 17> cache;
  static std::array<std::once_flag, 17> flags;
  std::call_once(flags[static_cast<std::size_t>(l)], [l] {
    const std::uint32_t poly = irreducible_poly(l);
    const std::uint32_t order = 1u << l;
    const std::uint32_t g = find_generator(l, poly);
    auto t = std::make_unique<Tables>();
    t->exp.assign(2 * (order - 1), 0);
    t->log.assign(order, 0);
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < order - 1; ++i) {
      t->exp[i] = static_cast<value_type>(x);
      t->exp[i + order - 1] = static_cast<value_type>(x);
      t->log[x] = static_cast<value_type>(i);
      x = slow_mul(x, g, l, poly);
    }
    cache[static_cast<std::size_t>(l)] = std::move(t);
  });
  return cache[static_cast<std::size_t>(l)].get();
}

}  // namespace midas::gf
