// The ring Z / 2^e Z, for Koutis' original integer formulation.
//
// Algorithm 1 of the paper evaluates the k-path polynomial over the integers
// modulo 2^{k+1}: iteration t assigns x_i = 1 + (-1)^{<v_i, t>} in {0, 2},
// and a degree-k multilinear monomial with linearly independent v's sums to
// exactly 2^k over the 2^k iterations, while every monomial containing a
// square sums to a multiple of 2^{k+1}. e = k + 1 <= 31 keeps a product of
// two reduced values inside uint64, so mul is one multiply and one mask.
#pragma once

#include <cstdint>

#include "gf/field.hpp"
#include "util/require.hpp"

namespace midas::gf {

class ZMod2e {
 public:
  using value_type = std::uint32_t;

  /// Construct Z / 2^e Z. Requires 1 <= e <= 31.
  explicit ZMod2e(int e) : e_(e), mask_((e == 31) ? 0x7FFFFFFFu
                                                  : ((1u << e) - 1u)) {
    MIDAS_REQUIRE(e >= 1 && e <= 31, "ZMod2e supports e in [1,31]");
  }

  [[nodiscard]] value_type zero() const noexcept { return 0; }
  [[nodiscard]] value_type one() const noexcept { return 1; }
  [[nodiscard]] int bits() const noexcept { return e_; }
  [[nodiscard]] value_type mask() const noexcept { return mask_; }

  [[nodiscard]] value_type add(value_type a, value_type b) const noexcept {
    return (a + b) & mask_;
  }

  [[nodiscard]] value_type mul(value_type a, value_type b) const noexcept {
    return static_cast<value_type>(
        (static_cast<std::uint64_t>(a) * b) & mask_);
  }

  /// dst[q] = (dst[q] + a[q] * b[q]) mod 2^e for q in [0, n).
  void mul_add_pointwise(value_type* dst, const value_type* a,
                         const value_type* b, std::size_t n) const noexcept {
    for (std::size_t q = 0; q < n; ++q) {
      dst[q] = static_cast<value_type>(
          (dst[q] + static_cast<std::uint64_t>(a[q]) * b[q]) & mask_);
    }
  }

 private:
  int e_;
  value_type mask_;
};

static_assert(DetectionAlgebra<ZMod2e>);

}  // namespace midas::gf
