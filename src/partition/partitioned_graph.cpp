#include "partition/partitioned_graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/require.hpp"

namespace midas::partition {

std::uint64_t PartView::send_volume() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lst : send_to) total += lst.size();
  return total;
}

namespace {

// boundary = sorted unique union of the send lists.
void build_boundaries(std::vector<PartView>& views) {
  for (auto& view : views) {
    auto& b = view.boundary;
    b.clear();
    for (const auto& list : view.send_to)
      b.insert(b.end(), list.begin(), list.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
  }
}

}  // namespace

std::vector<PartView> build_part_views(const graph::Graph& g,
                                       const Partition& p) {
  using graph::VertexId;
  const VertexId n = g.num_vertices();
  MIDAS_REQUIRE(p.owner.size() == n, "partition does not match graph");
  const int parts = p.parts;

  std::vector<PartView> views(static_cast<std::size_t>(parts));
  // Owned vertices per part (ascending, since we scan ids in order), and
  // the global -> local index map.
  std::vector<std::uint32_t> local_index(n);
  for (VertexId v = 0; v < n; ++v) {
    auto& view = views[static_cast<std::size_t>(p.owner[v])];
    local_index[v] = static_cast<std::uint32_t>(view.vertices.size());
    view.vertices.push_back(v);
  }

  for (int s = 0; s < parts; ++s) {
    auto& view = views[static_cast<std::size_t>(s)];
    view.part = s;
    view.send_to.assign(static_cast<std::size_t>(parts), {});
    view.recv_from.assign(static_cast<std::size_t>(parts), {});

    // Pass 1: discover ghosts (remote neighbors) and which targets need each
    // local vertex.
    std::unordered_map<VertexId, std::uint32_t> ghost_index;
    std::vector<std::vector<bool>> sends_to_part;  // lazily sized below
    sends_to_part.assign(static_cast<std::size_t>(parts),
                         std::vector<bool>());
    for (std::uint32_t li = 0; li < view.num_local(); ++li) {
      const VertexId u = view.vertices[li];
      for (VertexId v : g.neighbors(u)) {
        const int t = p.owner[v];
        if (t == s) continue;
        if (!ghost_index.count(v)) ghost_index.emplace(v, 0);
        auto& mask = sends_to_part[static_cast<std::size_t>(t)];
        if (mask.empty()) mask.assign(view.num_local(), false);
        mask[li] = true;
      }
    }
    // Ghost ids ascending; assign dense indices.
    view.ghosts.reserve(ghost_index.size());
    for (const auto& [gid, _] : ghost_index) view.ghosts.push_back(gid);
    std::sort(view.ghosts.begin(), view.ghosts.end());
    for (std::uint32_t gi = 0; gi < view.num_ghosts(); ++gi)
      ghost_index[view.ghosts[gi]] = gi;

    // Send lists: ascending local index == ascending global id.
    for (int t = 0; t < parts; ++t) {
      const auto& mask = sends_to_part[static_cast<std::size_t>(t)];
      if (mask.empty()) continue;
      for (std::uint32_t li = 0; li < view.num_local(); ++li)
        if (mask[li])
          view.send_to[static_cast<std::size_t>(t)].push_back(li);
    }

    // Pass 2: local CSR with encoded refs.
    view.adj_offsets.assign(view.num_local() + 1, 0);
    std::uint64_t total_deg = 0;
    for (std::uint32_t li = 0; li < view.num_local(); ++li)
      total_deg += g.degree(view.vertices[li]);
    view.adj.reserve(total_deg);
    for (std::uint32_t li = 0; li < view.num_local(); ++li) {
      const VertexId u = view.vertices[li];
      for (VertexId v : g.neighbors(u)) {
        if (p.owner[v] == s) {
          view.adj.push_back(NbrRef::local(local_index[v]));
        } else {
          view.adj.push_back(NbrRef::ghost(ghost_index[v]));
        }
      }
      view.adj_offsets[li + 1] = view.adj.size();
    }
  }

  // Receive plans: part s receives from part t exactly t's send_to[s] set,
  // in ascending global id order; map those globals to s's ghost indices.
  for (int s = 0; s < parts; ++s) {
    auto& view = views[static_cast<std::size_t>(s)];
    std::unordered_map<VertexId, std::uint32_t> ghost_of;
    ghost_of.reserve(view.ghosts.size());
    for (std::uint32_t gi = 0; gi < view.num_ghosts(); ++gi)
      ghost_of.emplace(view.ghosts[gi], gi);
    for (int t = 0; t < parts; ++t) {
      if (t == s) continue;
      const auto& sender = views[static_cast<std::size_t>(t)];
      const auto& send_list = sender.send_to[static_cast<std::size_t>(s)];
      auto& recv = view.recv_from[static_cast<std::size_t>(t)];
      recv.reserve(send_list.size());
      for (std::uint32_t li : send_list) {
        const VertexId gid = sender.vertices[li];
        const auto it = ghost_of.find(gid);
        MIDAS_ASSERT(it != ghost_of.end(),
                     "sender emits a vertex receiver does not ghost");
        recv.push_back(it->second);
      }
    }
  }
  build_boundaries(views);
  return views;
}

std::vector<PartView> build_dipart_views(const graph::DiGraph& g,
                                         const Partition& p) {
  using graph::VertexId;
  const VertexId n = g.num_vertices();
  MIDAS_REQUIRE(p.owner.size() == n, "partition does not match graph");
  const int parts = p.parts;

  std::vector<PartView> views(static_cast<std::size_t>(parts));
  std::vector<std::uint32_t> local_index(n);
  for (VertexId v = 0; v < n; ++v) {
    auto& view = views[static_cast<std::size_t>(p.owner[v])];
    local_index[v] = static_cast<std::uint32_t>(view.vertices.size());
    view.vertices.push_back(v);
  }

  for (int s = 0; s < parts; ++s) {
    auto& view = views[static_cast<std::size_t>(s)];
    view.part = s;
    view.send_to.assign(static_cast<std::size_t>(parts), {});
    view.recv_from.assign(static_cast<std::size_t>(parts), {});

    // Ghosts: remote *in*-neighbors of local vertices. Send lists: local
    // vertices with an *out*-edge into the target part.
    std::unordered_map<VertexId, std::uint32_t> ghost_index;
    std::vector<std::vector<bool>> sends_to_part(
        static_cast<std::size_t>(parts));
    for (std::uint32_t li = 0; li < view.num_local(); ++li) {
      const VertexId u = view.vertices[li];
      for (VertexId w : g.in_neighbors(u)) {
        if (p.owner[w] != s && !ghost_index.count(w))
          ghost_index.emplace(w, 0);
      }
      for (VertexId w : g.out_neighbors(u)) {
        const int t = p.owner[w];
        if (t == s) continue;
        auto& mask = sends_to_part[static_cast<std::size_t>(t)];
        if (mask.empty()) mask.assign(view.num_local(), false);
        mask[li] = true;
      }
    }
    view.ghosts.reserve(ghost_index.size());
    for (const auto& [gid, _] : ghost_index) view.ghosts.push_back(gid);
    std::sort(view.ghosts.begin(), view.ghosts.end());
    for (std::uint32_t gi = 0; gi < view.num_ghosts(); ++gi)
      ghost_index[view.ghosts[gi]] = gi;

    for (int t = 0; t < parts; ++t) {
      const auto& mask = sends_to_part[static_cast<std::size_t>(t)];
      if (mask.empty()) continue;
      for (std::uint32_t li = 0; li < view.num_local(); ++li)
        if (mask[li])
          view.send_to[static_cast<std::size_t>(t)].push_back(li);
    }

    view.adj_offsets.assign(view.num_local() + 1, 0);
    std::uint64_t total_deg = 0;
    for (std::uint32_t li = 0; li < view.num_local(); ++li)
      total_deg += g.in_degree(view.vertices[li]);
    view.adj.reserve(total_deg);
    for (std::uint32_t li = 0; li < view.num_local(); ++li) {
      const VertexId u = view.vertices[li];
      for (VertexId w : g.in_neighbors(u)) {
        if (p.owner[w] == s) {
          view.adj.push_back(NbrRef::local(local_index[w]));
        } else {
          view.adj.push_back(NbrRef::ghost(ghost_index[w]));
        }
      }
      view.adj_offsets[li + 1] = view.adj.size();
    }
  }

  // Receive plans mirror the senders' out-edge lists: s receives from t
  // exactly t's vertices with out-edges into s, ascending — which is
  // exactly s's ghost subset owned by t.
  for (int s = 0; s < parts; ++s) {
    auto& view = views[static_cast<std::size_t>(s)];
    std::unordered_map<VertexId, std::uint32_t> ghost_of;
    ghost_of.reserve(view.ghosts.size());
    for (std::uint32_t gi = 0; gi < view.num_ghosts(); ++gi)
      ghost_of.emplace(view.ghosts[gi], gi);
    for (int t = 0; t < parts; ++t) {
      if (t == s) continue;
      const auto& sender = views[static_cast<std::size_t>(t)];
      const auto& send_list = sender.send_to[static_cast<std::size_t>(s)];
      auto& recv = view.recv_from[static_cast<std::size_t>(t)];
      recv.reserve(send_list.size());
      for (std::uint32_t li : send_list) {
        const VertexId gid = sender.vertices[li];
        const auto it = ghost_of.find(gid);
        MIDAS_ASSERT(it != ghost_of.end(),
                     "directed sender emits a vertex receiver lacks");
        recv.push_back(it->second);
      }
    }
  }
  build_boundaries(views);
  return views;
}

}  // namespace midas::partition
