// Multilevel graph partitioning (METIS-style, simplified).
//
// The paper uses a "naive partitioning scheme" and leaves better
// partitioners as leverage; this is that leverage. Three phases:
//   1. Coarsening: repeated heavy-edge matching collapses matched vertex
//      pairs until the graph is small (or stops shrinking).
//   2. Initial partitioning: BFS-grown partition of the coarsest graph.
//   3. Uncoarsening: project the partition back up, running boundary
//      label-propagation refinement at every level.
// Produces balanced partitions with substantially lower MAXDEG than the
// naive schemes on mesh-like graphs.
#pragma once

#include "partition/partition.hpp"

namespace midas::partition {

struct MultilevelOptions {
  int coarsest_size_per_part = 30;  // stop coarsening near parts * this
  int refine_sweeps = 4;            // label-propagation sweeps per level
  std::uint64_t seed = 1;           // matching visit order
};

/// Multilevel partition of g into `parts` parts.
[[nodiscard]] Partition multilevel_partition(
    const Graph& g, int parts, const MultilevelOptions& opt = {});

}  // namespace midas::partition
