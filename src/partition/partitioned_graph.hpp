// Distributed view of a partitioned graph.
//
// Each of the N1 ranks of a MIDAS phase owns one part. A PartView gives the
// rank everything it needs without touching the global graph:
//   - its own vertices (global ids + dense local indices),
//   - ghost vertices: remote vertices adjacent to a local vertex,
//   - a local CSR whose neighbor references are encoded as local-or-ghost,
//   - a halo exchange plan: which local vertices to send to which part and
//     where incoming values land in the ghost array.
//
// The plans on the two sides of a (sender, receiver) pair are constructed
// from the same sorted global-id order, so an exchange is a straight memcpy
// gather/scatter with no per-message metadata — this is what lets MIDAS
// batch N2 iterations into a single message (Section IV, batching).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/digraph.hpp"
#include "partition/partition.hpp"

namespace midas::partition {

/// Encoded neighbor reference in the local CSR: local index or ghost index.
struct NbrRef {
  std::uint32_t packed;
  static constexpr std::uint32_t kGhostBit = 0x80000000u;

  [[nodiscard]] bool is_ghost() const noexcept { return packed & kGhostBit; }
  [[nodiscard]] std::uint32_t index() const noexcept {
    return packed & ~kGhostBit;
  }
  static NbrRef local(std::uint32_t idx) noexcept { return {idx}; }
  static NbrRef ghost(std::uint32_t idx) noexcept {
    return {idx | kGhostBit};
  }
};

/// One rank's view of the partitioned graph.
struct PartView {
  int part = 0;

  /// Global ids of owned vertices, ascending; local index = position.
  std::vector<graph::VertexId> vertices;
  /// Global ids of ghost vertices, ascending; ghost index = position.
  std::vector<graph::VertexId> ghosts;

  /// Local CSR over owned vertices; refs point into vertices/ghosts.
  std::vector<std::uint64_t> adj_offsets;  // size vertices.size()+1
  std::vector<NbrRef> adj;

  /// send_to[t] = local indices whose values part t needs, ascending by
  /// global id. Empty for t == part.
  std::vector<std::vector<std::uint32_t>> send_to;
  /// recv_from[t] = ghost indices where values arriving from part t land,
  /// in the exact order part t's send_to[part] emits them.
  std::vector<std::vector<std::uint32_t>> recv_from;

  /// Sorted union of all send_to lists: the local vertices whose values any
  /// other part consumes. The bit-sliced kernels transpose exactly these
  /// vertices' lane blocks into the scalar halo payload; precomputing the
  /// list here (instead of per engine run) lets a cached view be reused
  /// across queries with zero per-run setup.
  std::vector<std::uint32_t> boundary;

  [[nodiscard]] std::uint32_t num_local() const noexcept {
    return static_cast<std::uint32_t>(vertices.size());
  }
  [[nodiscard]] std::uint32_t num_ghosts() const noexcept {
    return static_cast<std::uint32_t>(ghosts.size());
  }
  /// Total values sent per iteration (sum over targets).
  [[nodiscard]] std::uint64_t send_volume() const noexcept;
};

/// Build the views of every part. O(m + n) overall.
[[nodiscard]] std::vector<PartView> build_part_views(const graph::Graph& g,
                                                     const Partition& p);

/// Directed variant: `adj` holds *in*-neighbor references (the k-path DP
/// consumes in-neighbors), ghosts are remote in-neighbors, and send lists
/// are the local vertices with out-edges into each target part — the exact
/// mirror of the receivers' ghost sets, in the same sorted order.
[[nodiscard]] std::vector<PartView> build_dipart_views(
    const graph::DiGraph& g, const Partition& p);

}  // namespace midas::partition
