// Vertex partitioning for MIDAS.
//
// MIDAS partitions G into N1 parts; Theorem 2 bounds compute by
// MAXLOAD = max_j |G^j| and communication by MAXDEG = max_j DEG(j), where
// DEG(j) counts edges leaving part j. This header provides the partitioners
// used in the paper's experiments ("even with a naive partitioning scheme")
// plus better ones for ablations, and the metric computations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace midas::partition {

using graph::Graph;
using graph::VertexId;

/// A partition assigns every vertex an owner part in [0, parts).
struct Partition {
  int parts = 0;
  std::vector<int> owner;  // size n

  /// Vertices of part p, in increasing global id order.
  [[nodiscard]] std::vector<VertexId> members(int p) const;
  /// Sizes of all parts.
  [[nodiscard]] std::vector<std::uint64_t> loads() const;
};

/// Contiguous ranges of vertex ids — the paper's "naive" scheme; great for
/// generators that have locality in the id space (road lattices), terrible
/// for random ids.
[[nodiscard]] Partition block_partition(const Graph& g, int parts);

/// Uniformly random owner per vertex — the scheme analyzed in Lemma 1.
[[nodiscard]] Partition random_partition(const Graph& g, int parts,
                                         Xoshiro256& rng);

/// BFS-grown partition: repeatedly grow a part from an unassigned seed by
/// breadth-first search until it reaches ceil(n/parts) vertices. Produces
/// connected, low-cut parts on meshes.
[[nodiscard]] Partition bfs_partition(const Graph& g, int parts);

/// Linear Deterministic Greedy streaming partitioner (Stanton–Kliot): each
/// vertex goes to the part with the most already-assigned neighbors, scaled
/// by a load penalty (1 - load/capacity).
[[nodiscard]] Partition ldg_partition(const Graph& g, int parts);

/// One refinement sweep of label propagation under balance constraints:
/// move a vertex to the neighboring part with most neighbors if that part
/// is below capacity. Improves any initial partition's cut.
void label_propagation_refine(const Graph& g, Partition& p, int sweeps = 3);

/// Partition quality metrics, in the paper's notation.
struct Metrics {
  std::uint64_t max_load = 0;   // MAXLOAD = max_j |G^j|
  std::uint64_t max_deg = 0;    // MAXDEG  = max_j DEG(j)
  std::uint64_t edge_cut = 0;   // undirected edges crossing parts
  std::vector<std::uint64_t> load;  // |G^j| per part
  std::vector<std::uint64_t> deg;   // DEG(j) per part
};
[[nodiscard]] Metrics compute_metrics(const Graph& g, const Partition& p);

}  // namespace midas::partition
