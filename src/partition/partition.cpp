#include "partition/partition.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/require.hpp"

namespace midas::partition {

std::vector<VertexId> Partition::members(int p) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < owner.size(); ++v)
    if (owner[v] == p) out.push_back(v);
  return out;
}

std::vector<std::uint64_t> Partition::loads() const {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(parts), 0);
  for (int o : owner) load[static_cast<std::size_t>(o)]++;
  return load;
}

namespace {

void check_args(const Graph& g, int parts) {
  MIDAS_REQUIRE(parts >= 1, "need at least one part");
  MIDAS_REQUIRE(g.num_vertices() >= static_cast<VertexId>(parts),
                "more parts than vertices");
}

}  // namespace

Partition block_partition(const Graph& g, int parts) {
  check_args(g, parts);
  const VertexId n = g.num_vertices();
  Partition p{parts, std::vector<int>(n)};
  // The first n % parts blocks get one extra vertex, so every part is
  // nonempty and loads differ by at most one.
  const VertexId q = n / static_cast<VertexId>(parts);
  const VertexId r = n % static_cast<VertexId>(parts);
  const VertexId split = (q + 1) * r;  // first vertex of the small blocks
  for (VertexId v = 0; v < n; ++v) {
    p.owner[v] = v < split ? static_cast<int>(v / (q + 1))
                           : static_cast<int>(r + (v - split) / q);
  }
  return p;
}

Partition random_partition(const Graph& g, int parts, Xoshiro256& rng) {
  check_args(g, parts);
  const VertexId n = g.num_vertices();
  Partition p{parts, std::vector<int>(n)};
  // Random balanced assignment: shuffle ids, then deal round-robin, so all
  // loads differ by at most one (matches Lemma 1's equal-size assumption).
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = v;
  for (VertexId i = n; i > 1; --i)
    std::swap(ids[i - 1], ids[rng.below(i)]);
  for (VertexId i = 0; i < n; ++i)
    p.owner[ids[i]] = static_cast<int>(i % static_cast<VertexId>(parts));
  return p;
}

Partition bfs_partition(const Graph& g, int parts) {
  check_args(g, parts);
  const VertexId n = g.num_vertices();
  Partition p{parts, std::vector<int>(n, -1)};
  const VertexId target = (n + parts - 1) / parts;
  VertexId next_seed = 0;
  for (int part = 0; part < parts; ++part) {
    VertexId filled = 0;
    std::deque<VertexId> queue;
    while (filled < target) {
      if (queue.empty()) {
        while (next_seed < n && p.owner[next_seed] != -1) ++next_seed;
        if (next_seed >= n) break;
        queue.push_back(next_seed);
        p.owner[next_seed] = part;
        ++filled;
        if (filled >= target) break;
      }
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : g.neighbors(u)) {
        if (p.owner[v] == -1) {
          p.owner[v] = part;
          queue.push_back(v);
          if (++filled >= target) break;
        }
      }
    }
    if (next_seed >= n && filled == 0) {
      // All vertices assigned before reaching this part; steal one vertex
      // per remaining part from the largest part to keep all parts nonempty.
      break;
    }
  }
  // Any stragglers (possible when BFS exhausted components early).
  for (VertexId v = 0; v < n; ++v)
    if (p.owner[v] == -1) p.owner[v] = parts - 1;
  // Ensure no empty part: steal vertices from the largest parts.
  auto load = p.loads();
  for (int part = 0; part < parts; ++part) {
    if (load[static_cast<std::size_t>(part)] > 0) continue;
    const int donor = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    for (VertexId v = 0; v < n; ++v) {
      if (p.owner[v] == donor) {
        p.owner[v] = part;
        load[static_cast<std::size_t>(donor)]--;
        load[static_cast<std::size_t>(part)]++;
        break;
      }
    }
  }
  return p;
}

Partition ldg_partition(const Graph& g, int parts) {
  check_args(g, parts);
  const VertexId n = g.num_vertices();
  Partition p{parts, std::vector<int>(n, -1)};
  std::vector<std::uint64_t> load(static_cast<std::size_t>(parts), 0);
  const double capacity =
      static_cast<double>(n) / parts * 1.1 + 1.0;  // 10% slack
  std::vector<std::uint32_t> nbr_count(static_cast<std::size_t>(parts));
  for (VertexId v = 0; v < n; ++v) {
    std::fill(nbr_count.begin(), nbr_count.end(), 0);
    for (VertexId u : g.neighbors(v))
      if (p.owner[u] >= 0) nbr_count[static_cast<std::size_t>(p.owner[u])]++;
    int best = 0;
    double best_score = -1.0;
    for (int part = 0; part < parts; ++part) {
      const auto sp = static_cast<std::size_t>(part);
      const double penalty = 1.0 - static_cast<double>(load[sp]) / capacity;
      if (penalty <= 0) continue;
      const double score = (1.0 + nbr_count[sp]) * penalty;
      if (score > best_score) {
        best_score = score;
        best = part;
      }
    }
    p.owner[v] = best;
    load[static_cast<std::size_t>(best)]++;
  }
  // Guarantee nonempty parts (LDG can starve a part on tiny inputs).
  for (int part = 0; part < parts; ++part) {
    if (load[static_cast<std::size_t>(part)] > 0) continue;
    const int donor = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    for (VertexId v = 0; v < n; ++v) {
      if (p.owner[v] == donor) {
        p.owner[v] = part;
        load[static_cast<std::size_t>(donor)]--;
        load[static_cast<std::size_t>(part)]++;
        break;
      }
    }
  }
  return p;
}

void label_propagation_refine(const Graph& g, Partition& p, int sweeps) {
  const VertexId n = g.num_vertices();
  MIDAS_REQUIRE(p.owner.size() == n, "partition size mismatch");
  auto load = p.loads();
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(static_cast<double>(n) / p.parts * 1.1) + 1;
  std::vector<std::uint32_t> nbr_count(static_cast<std::size_t>(p.parts));
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    bool moved = false;
    for (VertexId v = 0; v < n; ++v) {
      std::fill(nbr_count.begin(), nbr_count.end(), 0);
      for (VertexId u : g.neighbors(v))
        nbr_count[static_cast<std::size_t>(p.owner[u])]++;
      const int cur = p.owner[v];
      int best = cur;
      for (int part = 0; part < p.parts; ++part) {
        if (part == cur) continue;
        const auto sp = static_cast<std::size_t>(part);
        if (load[sp] + 1 > capacity) continue;
        if (nbr_count[sp] > nbr_count[static_cast<std::size_t>(best)])
          best = part;
      }
      if (best != cur &&
          load[static_cast<std::size_t>(cur)] > 1) {  // keep parts nonempty
        p.owner[v] = best;
        load[static_cast<std::size_t>(cur)]--;
        load[static_cast<std::size_t>(best)]++;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

Metrics compute_metrics(const Graph& g, const Partition& p) {
  Metrics m;
  m.load = p.loads();
  m.deg.assign(static_cast<std::size_t>(p.parts), 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (p.owner[u] != p.owner[v]) {
        m.deg[static_cast<std::size_t>(p.owner[u])]++;
        if (u < v) m.edge_cut++;
      }
    }
  }
  for (auto l : m.load) m.max_load = std::max(m.max_load, l);
  for (auto d : m.deg) m.max_deg = std::max(m.max_deg, d);
  return m;
}

}  // namespace midas::partition
