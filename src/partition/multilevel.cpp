#include "partition/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace midas::partition {

namespace {

/// One level of the coarsening hierarchy: a vertex- and edge-weighted
/// graph in CSR form, plus the mapping from the finer level's vertices.
struct Level {
  VertexId n = 0;
  std::vector<std::uint32_t> vweight;
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> nbr;
  std::vector<std::uint32_t> eweight;
  std::vector<VertexId> parent;  // finer vertex -> this level's vertex
};

Level level_from_graph(const Graph& g) {
  Level lvl;
  lvl.n = g.num_vertices();
  lvl.vweight.assign(lvl.n, 1);
  lvl.offsets.assign(static_cast<std::size_t>(lvl.n) + 1, 0);
  for (VertexId v = 0; v < lvl.n; ++v)
    lvl.offsets[v + 1] = lvl.offsets[v] + g.degree(v);
  lvl.nbr.reserve(lvl.offsets[lvl.n]);
  for (VertexId v = 0; v < lvl.n; ++v)
    for (VertexId u : g.neighbors(v)) lvl.nbr.push_back(u);
  lvl.eweight.assign(lvl.nbr.size(), 1);
  return lvl;
}

/// Heavy-edge matching + contraction. Returns the coarser level; fills
/// fine.parent.
Level coarsen(Level& fine, Xoshiro256& rng) {
  const VertexId n = fine.n;
  std::vector<VertexId> match(n, n);  // n = unmatched
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (VertexId i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  for (VertexId v : order) {
    if (match[v] != n) continue;
    VertexId best = n;
    std::uint32_t best_w = 0;
    for (auto e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
      const VertexId u = fine.nbr[e];
      if (u != v && match[u] == n && fine.eweight[e] > best_w) {
        best_w = fine.eweight[e];
        best = u;
      }
    }
    match[v] = (best == n) ? v : best;
    if (best != n) match[best] = v;
  }

  // Assign coarse ids (one per matched pair / singleton).
  fine.parent.assign(n, 0);
  VertexId coarse_n = 0;
  std::vector<bool> seen(n, false);
  for (VertexId v = 0; v < n; ++v) {
    if (seen[v]) continue;
    seen[v] = true;
    const VertexId m = match[v];
    fine.parent[v] = coarse_n;
    if (m != v && m < n) {
      seen[m] = true;
      fine.parent[m] = coarse_n;
    }
    ++coarse_n;
  }

  // Aggregate edges between coarse vertices.
  Level coarse;
  coarse.n = coarse_n;
  coarse.vweight.assign(coarse_n, 0);
  for (VertexId v = 0; v < n; ++v)
    coarse.vweight[fine.parent[v]] += fine.vweight[v];
  std::vector<std::unordered_map<VertexId, std::uint32_t>> agg(coarse_n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = fine.parent[v];
    for (auto e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
      const VertexId cu = fine.parent[fine.nbr[e]];
      if (cu != cv) agg[cv][cu] += fine.eweight[e];
    }
  }
  coarse.offsets.assign(static_cast<std::size_t>(coarse_n) + 1, 0);
  for (VertexId v = 0; v < coarse_n; ++v)
    coarse.offsets[v + 1] = coarse.offsets[v] + agg[v].size();
  coarse.nbr.reserve(coarse.offsets[coarse_n]);
  coarse.eweight.reserve(coarse.offsets[coarse_n]);
  for (VertexId v = 0; v < coarse_n; ++v) {
    std::vector<std::pair<VertexId, std::uint32_t>> sorted(
        agg[v].begin(), agg[v].end());
    std::sort(sorted.begin(), sorted.end());
    for (auto [u, w] : sorted) {
      coarse.nbr.push_back(u);
      coarse.eweight.push_back(w);
    }
  }
  return coarse;
}

/// BFS-grown initial partition of the coarsest level, balanced on vertex
/// weights.
std::vector<int> initial_partition(const Level& lvl, int parts) {
  std::uint64_t total = 0;
  for (auto w : lvl.vweight) total += w;
  const std::uint64_t target = (total + parts - 1) / parts;
  std::vector<int> owner(lvl.n, -1);
  VertexId next_seed = 0;
  for (int p = 0; p < parts; ++p) {
    std::uint64_t filled = 0;
    std::vector<VertexId> queue;
    std::size_t head = 0;
    while (filled < target) {
      if (head >= queue.size()) {
        while (next_seed < lvl.n && owner[next_seed] != -1) ++next_seed;
        if (next_seed >= lvl.n) break;
        queue.push_back(next_seed);
        owner[next_seed] = p;
        filled += lvl.vweight[next_seed];
        ++head;
        if (filled >= target) break;
        // fall through to expand from this seed
        --head;
      }
      const VertexId v = queue[head++];
      for (auto e = lvl.offsets[v]; e < lvl.offsets[v + 1] && filled < target;
           ++e) {
        const VertexId u = lvl.nbr[e];
        if (owner[u] == -1) {
          owner[u] = p;
          queue.push_back(u);
          filled += lvl.vweight[u];
        }
      }
    }
  }
  for (VertexId v = 0; v < lvl.n; ++v)
    if (owner[v] == -1) owner[v] = parts - 1;
  return owner;
}

/// Weighted label-propagation refinement at one level.
void refine(const Level& lvl, std::vector<int>& owner, int parts,
            int sweeps) {
  std::uint64_t total = 0;
  for (auto w : lvl.vweight) total += w;
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(total) / parts * 1.08 + 1);
  std::vector<std::uint64_t> load(static_cast<std::size_t>(parts), 0);
  for (VertexId v = 0; v < lvl.n; ++v)
    load[static_cast<std::size_t>(owner[v])] += lvl.vweight[v];
  std::vector<std::uint64_t> gain(static_cast<std::size_t>(parts));
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    bool moved = false;
    for (VertexId v = 0; v < lvl.n; ++v) {
      std::fill(gain.begin(), gain.end(), 0);
      for (auto e = lvl.offsets[v]; e < lvl.offsets[v + 1]; ++e)
        gain[static_cast<std::size_t>(owner[lvl.nbr[e]])] +=
            lvl.eweight[e];
      const int cur = owner[v];
      int best = cur;
      for (int p = 0; p < parts; ++p) {
        if (p == cur) continue;
        const auto sp = static_cast<std::size_t>(p);
        if (load[sp] + lvl.vweight[v] > capacity) continue;
        if (gain[sp] > gain[static_cast<std::size_t>(best)]) best = p;
      }
      if (best != cur &&
          load[static_cast<std::size_t>(cur)] > lvl.vweight[v]) {
        owner[v] = best;
        load[static_cast<std::size_t>(cur)] -= lvl.vweight[v];
        load[static_cast<std::size_t>(best)] += lvl.vweight[v];
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

Partition multilevel_partition(const Graph& g, int parts,
                               const MultilevelOptions& opt) {
  MIDAS_REQUIRE(parts >= 1, "need at least one part");
  MIDAS_REQUIRE(g.num_vertices() >= static_cast<VertexId>(parts),
                "more parts than vertices");
  Xoshiro256 rng(opt.seed);

  // Coarsen until small or no longer shrinking.
  std::vector<Level> levels;
  levels.push_back(level_from_graph(g));
  const auto stop_size = static_cast<VertexId>(
      std::max(1, parts * opt.coarsest_size_per_part));
  while (levels.back().n > stop_size) {
    Level next = coarsen(levels.back(), rng);
    if (next.n >= levels.back().n * 95 / 100) break;  // stalled
    levels.push_back(std::move(next));
  }

  // Initial partition at the coarsest level, then project and refine.
  std::vector<int> owner = initial_partition(levels.back(), parts);
  refine(levels.back(), owner, parts, opt.refine_sweeps);
  for (std::size_t lvl = levels.size() - 1; lvl-- > 0;) {
    std::vector<int> fine_owner(levels[lvl].n);
    for (VertexId v = 0; v < levels[lvl].n; ++v)
      fine_owner[v] = owner[levels[lvl].parent[v]];
    owner = std::move(fine_owner);
    refine(levels[lvl], owner, parts, opt.refine_sweeps);
  }

  Partition p{parts, std::move(owner)};
  // Guarantee nonempty parts.
  auto load = p.loads();
  for (int part = 0; part < parts; ++part) {
    if (load[static_cast<std::size_t>(part)] > 0) continue;
    const int donor = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (p.owner[v] == donor) {
        p.owner[v] = part;
        load[static_cast<std::size_t>(donor)]--;
        load[static_cast<std::size_t>(part)]++;
        break;
      }
    }
  }
  return p;
}

}  // namespace midas::partition
