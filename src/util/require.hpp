// Contract checking for MIDAS.
//
// MIDAS_REQUIRE is an always-on precondition check (invalid user input, wrong
// configuration) that throws std::invalid_argument so callers and tests can
// observe the failure. MIDAS_ASSERT is an internal-invariant check compiled
// out in release builds unless MIDAS_CHECKED is defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace midas {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace midas

#define MIDAS_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::midas::contract_fail("precondition", #expr, __FILE__, __LINE__,   \
                             (msg));                                      \
  } while (0)

#if !defined(NDEBUG) || defined(MIDAS_CHECKED)
#define MIDAS_ASSERT(expr, msg)                                           \
  do {                                                                    \
    if (!(expr))                                                          \
      ::midas::contract_fail("invariant", #expr, __FILE__, __LINE__,      \
                             (msg));                                      \
  } while (0)
#else
#define MIDAS_ASSERT(expr, msg) ((void)0)
#endif
