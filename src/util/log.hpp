// Tiny leveled logger. Thread-safe line-at-a-time output; level settable via
// MIDAS_LOG env var (error|warn|info|debug) or set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace midas {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_error(const Ts&... parts) {
  log_line(LogLevel::kError, detail::cat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  log_line(LogLevel::kWarn, detail::cat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  log_line(LogLevel::kInfo, detail::cat(parts...));
}
template <typename... Ts>
void log_debug(const Ts&... parts) {
  log_line(LogLevel::kDebug, detail::cat(parts...));
}

}  // namespace midas
