#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/require.hpp"

namespace midas {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MIDAS_REQUIRE(!header_.empty(), "table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MIDAS_REQUIRE(row.size() == header_.size(),
                "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(std::uint64_t v) { return std::to_string(v); }

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", str().c_str());
  std::fflush(stdout);
}

}  // namespace midas
