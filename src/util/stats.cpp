#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace midas {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double p) {
  MIDAS_REQUIRE(!xs.empty(), "percentile of empty sample");
  MIDAS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean(std::span<const double> xs) {
  MIDAS_REQUIRE(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  MIDAS_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace midas
