// Plain-text table printer for bench output. Every bench binary prints the
// paper's figure/table as rows through this formatter so the output is
// uniform and grep-able; `Table::csv()` emits the same data as CSV for
// plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace midas {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: format mixed cells.
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(std::int64_t v);
  static std::string cell(std::uint64_t v);
  static std::string cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  static std::string cell(double v, int precision = 4);

  /// Render with aligned columns and a rule under the header.
  [[nodiscard]] std::string str() const;
  /// Render as comma-separated values (header row first).
  [[nodiscard]] std::string csv() const;

  /// Print `str()` to stdout with an optional caption line.
  void print(const std::string& caption = "") const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace midas
