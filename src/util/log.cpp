#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace midas {
namespace {

std::atomic<LogLevel> g_level{[] {
  const char* env = std::getenv("MIDAS_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}()};

std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[midas %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace midas
