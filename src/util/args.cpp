#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/require.hpp"

namespace midas {

Args::Args(int argc, const char* const* argv) {
  MIDAS_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(std::move(a));
      continue;
    }
    a = a.substr(2);
    auto eq = a.find('=');
    if (eq != std::string::npos) {
      kv_[a.substr(0, eq)] = a.substr(eq + 1);
    } else {
      kv_[a] = "true";  // bare flag; values must use --key=value
    }
  }
}

std::string Args::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  MIDAS_REQUIRE(end && *end == '\0', "option --" + key + " is not an integer");
  return v;
}

double Args::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  MIDAS_REQUIRE(end && *end == '\0', "option --" + key + " is not a number");
  return v;
}

bool Args::get_flag(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return false;
  return it->second != "false" && it->second != "0";
}

bool Args::has(const std::string& key) const { return kv_.count(key) != 0; }

}  // namespace midas
