// Deterministic, fast pseudo-random number generation.
//
// All randomized components of MIDAS (random Z2^k vectors, random GF
// multipliers, graph generators, partitioners) draw from Xoshiro256** seeded
// via SplitMix64, so every experiment is reproducible from a single uint64
// seed. The generators here are header-only and allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace midas {

/// SplitMix64: used to expand a single seed into generator state and to
/// derive independent per-rank / per-round streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Serializable position (runtime/checkpoint.hpp): a resumed run restores
  // the stream exactly where the interrupted one left it.
  [[nodiscard]] constexpr std::uint64_t state() const noexcept {
    return state_;
  }
  constexpr void set_state(std::uint64_t s) noexcept { state_ = s; }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection-
  /// free mapping (bias negligible for bound << 2^64, which always holds
  /// here); branch-free and fast in the inner loops.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent stream (e.g. one per MPI-style rank) from this
  /// generator's seed space without correlating with the parent.
  Xoshiro256 fork() noexcept { return Xoshiro256(operator()()); }

  // Serializable state (runtime/checkpoint.hpp). set_state with a
  // previously captured state() resumes the exact output sequence.
  using state_type = std::array<std::uint64_t, 4>;
  [[nodiscard]] state_type state() const noexcept { return state_; }
  void set_state(const state_type& s) noexcept { state_ = s; }

  friend bool operator==(const Xoshiro256& a, const Xoshiro256& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace midas
