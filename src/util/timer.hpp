// Wall-clock timing helpers used by benches and the runtime ledger.
#pragma once

#include <chrono>

namespace midas {

/// Monotonic stopwatch. `elapsed_s()` can be called repeatedly; `reset()`
/// restarts the epoch.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_s() * 1e3;
  }

  [[nodiscard]] double elapsed_us() const noexcept {
    return elapsed_s() * 1e6;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace midas
