// Minimal, dependency-free command-line argument parsing for examples and
// bench binaries. Supports `--key=value` and boolean flags (`--flag`);
// everything else is positional. The `--key value` form is intentionally
// not supported — it makes bare flags followed by positionals ambiguous.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace midas {

class Args {
 public:
  /// Parse argv. Throws std::invalid_argument on malformed input.
  Args(int argc, const char* const* argv);

  /// Look up a string option, with default.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  /// Look up an integer option, with default.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  /// Look up a floating-point option, with default.
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  /// True if a boolean flag was passed (possibly with =true/=false).
  [[nodiscard]] bool get_flag(const std::string& key) const;

  [[nodiscard]] bool has(const std::string& key) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace midas
