// Small online / batch statistics used by the bench harness and the traffic
// simulator (per-sensor running mean and standard deviation, percentiles,
// and a standard normal CDF for the p-value computation of Section VI-F).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace midas {

/// Welford online accumulator: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0,100]) by linear interpolation; copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Mean of a sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Standard normal cumulative distribution function Phi(z).
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation; max
/// relative error ~1.15e-9 — ample for synthetic p-value generation).
[[nodiscard]] double normal_quantile(double p);

}  // namespace midas
