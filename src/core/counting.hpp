// Approximate k-path counting from the detection oracle.
//
// Multilinear detection is a decision procedure; the paper lists counting
// as a variant its approach extends to. This implements the classic
// decision-to-counting reduction by *vertex subsampling*: keep each vertex
// independently with probability q; a fixed k-path survives with
// probability q^k, so when the true count is N the number of surviving
// paths is ~Poisson(N q^k) and the detection rate is ~1 - exp(-N q^k).
// Binary-searching q for a ~50% empirical detection rate gives
//   N_hat = ln 2 / q*^k .
// This is an order-of-magnitude estimator (correlation between paths
// sharing vertices biases it) — the right tool for "are there ~10^2 or
// ~10^5 of these?", not for exact census (use baseline::count_kpaths or
// color coding for small instances).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/detect_seq.hpp"
#include "gf/field.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace midas::core {

struct CountEstimateOptions {
  int k = 4;
  int trials_per_level = 24;   // detection trials per candidate q
  int search_steps = 12;       // binary-search resolution on log q
  double oracle_epsilon = 1e-3;
  std::uint64_t seed = 1;
};

struct CountEstimate {
  bool any = false;        // at least one k-path exists (q = 1 detection)
  double estimate = 0.0;   // ~ln 2 / q*^k ; 0 when none exist
  double q_star = 1.0;     // retention probability at the 50% crossover
};

/// Estimate the number of simple k-vertex paths in g.
template <gf::GaloisField F>
CountEstimate estimate_kpath_count(const graph::Graph& g,
                                   const CountEstimateOptions& opt,
                                   const F& f = F{}) {
  CountEstimate out;
  DetectOptions d;
  d.k = opt.k;
  d.epsilon = opt.oracle_epsilon;
  d.seed = opt.seed;
  if (!detect_kpath_seq(g, d, f).found) return out;  // certified-ish zero
  out.any = true;

  Xoshiro256 rng(opt.seed ^ 0xC0117ull);
  // Detection rate at a given retention probability.
  auto rate_at = [&](double q) {
    int hits = 0;
    for (int trial = 0; trial < opt.trials_per_level; ++trial) {
      std::vector<graph::VertexId> kept;
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
        if (rng.bernoulli(q)) kept.push_back(v);
      if (static_cast<int>(kept.size()) < opt.k) continue;
      const auto sub = graph::induced_subgraph(g, kept);
      DetectOptions dt = d;
      dt.seed = opt.seed + 7919 * static_cast<std::uint64_t>(trial) +
                static_cast<std::uint64_t>(q * 1e6);
      if (detect_kpath_seq(sub.graph, dt, f).found) ++hits;
    }
    return static_cast<double>(hits) / opt.trials_per_level;
  };

  // Binary search on log q for the 50% detection crossover. If even very
  // small q still detects, the count is astronomically large and the
  // estimate saturates at the search floor.
  double lo = 1e-3, hi = 1.0;
  for (int step = 0; step < opt.search_steps; ++step) {
    const double mid = std::sqrt(lo * hi);  // geometric midpoint
    if (rate_at(mid) >= 0.5)
      hi = mid;  // still detecting: fewer vertices needed
    else
      lo = mid;
  }
  out.q_star = hi;
  out.estimate = std::log(2.0) / std::pow(hi, opt.k);
  return out;
}

}  // namespace midas::core
