#include "core/circuit.hpp"

#include "graph/csr.hpp"

namespace midas::core {

Circuit kpath_circuit(const graph::Graph& g, int k) {
  MIDAS_REQUIRE(k >= 1, "k must be positive");
  const graph::VertexId n = g.num_vertices();
  Circuit c(n);
  // P(i, 1) = x_i.
  std::vector<Circuit::GateId> prev(n), cur(n);
  for (graph::VertexId i = 0; i < n; ++i) prev[i] = c.var(i);
  // P(i, j) = x_i * sum_{u in Nbr(i)} P(u, j-1). A fresh occurrence of x_i
  // per level keeps witnesses of different walks distinct monomials.
  for (int j = 2; j <= k; ++j) {
    for (graph::VertexId i = 0; i < n; ++i) {
      std::vector<Circuit::GateId> terms;
      terms.reserve(g.degree(i));
      for (graph::VertexId u : g.neighbors(i)) terms.push_back(prev[u]);
      if (terms.empty()) {
        // Isolated vertex: no walk of length >= 2 ends here; encode the
        // zero polynomial as x_i + x_i (char 2).
        const auto leaf = c.var(i);
        cur[i] = c.add(leaf, leaf);
      } else {
        cur[i] = c.mul(c.var(i), c.add_many(terms));
      }
    }
    std::swap(prev, cur);
  }
  std::vector<Circuit::GateId> all(prev.begin(), prev.end());
  c.set_output(c.add_many(all));
  return c;
}

}  // namespace midas::core
