// Tree-template decomposition (paper Section V-A, Fig. 2).
//
// A k-vertex template tree H is rooted and recursively split: removing the
// edge between ROOT(H) and one of its neighbors u yields children H1
// (containing the root) and H2 (rooted at u). Splitting continues until
// every subtemplate is a single node, giving exactly 2k - 1 subtemplates.
// The decomposition drives the k-tree dynamic program: the polynomial of an
// internal subtemplate combines its children's polynomials over graph edges.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace midas::core {

struct SubTemplate {
  int size = 1;        // number of template vertices covered
  int child1 = -1;     // subtemplate id sharing this root (-1 for leaves)
  int child2 = -1;     // subtemplate id rooted at the split neighbor
  /// For leaves: the template vertex this leaf stands for (unique per leaf,
  /// so each template position carries its own random coefficient).
  graph::VertexId template_vertex = 0;
};

/// The full decomposition of a template tree. Subtemplates are stored in
/// evaluation order: every child precedes its parent, and the last entry is
/// the whole template H.
class TreeDecomposition {
 public:
  /// Decompose `tree` (must be connected and acyclic) rooted at `root`.
  /// Throws std::invalid_argument if the graph is not a tree.
  TreeDecomposition(const graph::Graph& tree, graph::VertexId root);

  [[nodiscard]] const std::vector<SubTemplate>& subtemplates() const noexcept {
    return subs_;
  }
  [[nodiscard]] int root_id() const noexcept {
    return static_cast<int>(subs_.size()) - 1;
  }
  [[nodiscard]] int k() const noexcept { return k_; }
  /// Number of subtemplates, |T| = 2k - 1.
  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(subs_.size());
  }

 private:
  int decompose(const graph::Graph& tree,
                const std::vector<graph::VertexId>& vertices,
                graph::VertexId root);

  std::vector<SubTemplate> subs_;
  int k_ = 0;
};

}  // namespace midas::core
