// Generic k-multilinear detection over arbitrary arithmetic circuits —
// the paper's Problem 3 in full generality.
//
// The paper states k-MLD for any polynomial "given succinctly in a
// recursive form". This header provides that form: a Circuit is a DAG of
// gates over n variables, built bottom-up with var/add/mul (and mul_many /
// add_many conveniences). detect_multilinear() then decides whether the
// circuit's output polynomial has a degree-k multilinear monomial, by the
// same algebra as the specialized detectors: evaluate the circuit 2^k
// times with x_i -> r_{i,occ} * [<v_i, t> = 0] and XOR the results.
//
// Each *occurrence* of a variable in the circuit gets its own random
// coefficient (the occurrence id is the gate id), which is what makes
// distinct parse trees of the same monomial distinct in the r's — the
// same fix the specialized detectors apply (DESIGN.md §1).
//
// PRECONDITION (the paper's Problem 3 states it): every monomial of the
// output polynomial must have degree AT MOST k. The algebra kills a
// monomial iff the rank of its variables' v-vectors is below k; under the
// degree bound that is equivalent to "not multilinear of degree k", but a
// degree > k monomial (even one containing squares) can span all k
// dimensions and pass the test spuriously. Monomials of degree < k fold an
// even number of times and are never certified; pad with slack variables
// if you need "degree exactly k" over a lower-degree polynomial. The
// graph reductions satisfy the precondition by construction (level-j DP
// values are degree-j homogeneous).
#pragma once

#include <cstdint>
#include <vector>

#include "core/detect_seq.hpp"
#include "core/hashrand.hpp"
#include "gf/field.hpp"
#include "util/require.hpp"

namespace midas::core {

/// A DAG of arithmetic gates. Gate ids are dense and topologically ordered
/// by construction (operands must already exist).
class Circuit {
 public:
  using GateId = std::uint32_t;

  explicit Circuit(std::uint32_t num_variables)
      : num_variables_(num_variables) {}

  /// A leaf gate reading variable `var`. Each call creates a distinct
  /// occurrence (distinct random coefficient under detection).
  GateId var(std::uint32_t v) {
    MIDAS_REQUIRE(v < num_variables_, "variable index out of range");
    gates_.push_back({Op::kVar, v, 0});
    return last();
  }
  /// Sum gate.
  GateId add(GateId a, GateId b) {
    check(a);
    check(b);
    gates_.push_back({Op::kAdd, a, b});
    return last();
  }
  /// Product gate.
  GateId mul(GateId a, GateId b) {
    check(a);
    check(b);
    gates_.push_back({Op::kMul, a, b});
    return last();
  }
  /// Sum of many gates (left fold).
  GateId add_many(const std::vector<GateId>& gs) {
    MIDAS_REQUIRE(!gs.empty(), "add_many of nothing");
    GateId acc = gs[0];
    for (std::size_t i = 1; i < gs.size(); ++i) acc = add(acc, gs[i]);
    return acc;
  }
  /// Product of many gates (left fold).
  GateId mul_many(const std::vector<GateId>& gs) {
    MIDAS_REQUIRE(!gs.empty(), "mul_many of nothing");
    GateId acc = gs[0];
    for (std::size_t i = 1; i < gs.size(); ++i) acc = mul(acc, gs[i]);
    return acc;
  }

  /// Designate the output gate. Must be called before detection.
  void set_output(GateId g) {
    check(g);
    output_ = g;
    has_output_ = true;
  }

  [[nodiscard]] std::uint32_t num_variables() const noexcept {
    return num_variables_;
  }
  [[nodiscard]] std::size_t num_gates() const noexcept {
    return gates_.size();
  }
  [[nodiscard]] GateId output() const {
    MIDAS_REQUIRE(has_output_, "circuit output not set");
    return output_;
  }

  /// Evaluate over any DetectionAlgebra given per-variable leaf values
  /// scaled per occurrence by `leaf_coeff(gate_id, variable)`.
  template <gf::DetectionAlgebra F, typename LeafFn>
  typename F::value_type evaluate(const F& f, LeafFn&& leaf) const {
    using V = typename F::value_type;
    std::vector<V> val(gates_.size());
    for (GateId g = 0; g < gates_.size(); ++g) {
      const Gate& gate = gates_[g];
      switch (gate.op) {
        case Op::kVar: val[g] = leaf(g, gate.a); break;
        case Op::kAdd: val[g] = f.add(val[gate.a], val[gate.b]); break;
        case Op::kMul: val[g] = f.mul(val[gate.a], val[gate.b]); break;
      }
    }
    return val[output()];
  }

 private:
  enum class Op : std::uint8_t { kVar, kAdd, kMul };
  struct Gate {
    Op op;
    std::uint32_t a;  // variable index for kVar, else operand gate
    std::uint32_t b;  // second operand for kAdd/kMul
  };

  void check(GateId g) const {
    MIDAS_REQUIRE(g < gates_.size(), "operand gate does not exist");
  }
  [[nodiscard]] GateId last() const noexcept {
    return static_cast<GateId>(gates_.size() - 1);
  }

  std::uint32_t num_variables_;
  std::vector<Gate> gates_;
  GateId output_ = 0;
  bool has_output_ = false;
};

/// Decide whether the circuit's polynomial contains a multilinear monomial
/// of degree exactly k. One-sided error as in Theorem 1: "no" answers are
/// certain, "yes" is produced with probability >= 1 - epsilon.
template <gf::GaloisField F>
DetectResult detect_multilinear(const Circuit& circuit, int k,
                                const DetectOptions& opt, const F& f = F{}) {
  MIDAS_REQUIRE(k >= 1 && k <= 28, "k must be in [1,28]");
  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  DetectResult res;

  std::vector<std::uint32_t> v(circuit.num_variables());
  for (int round = 0; round < opt.rounds(); ++round) {
    for (std::uint32_t i = 0; i < v.size(); ++i)
      v[i] = v_vector(opt.seed, round, i, k);
    V total = f.zero();
    for (std::uint64_t t = 0; t < iters; ++t) {
      const V out = circuit.evaluate(
          f, [&](Circuit::GateId occurrence, std::uint32_t variable) -> V {
            if (inner_product_odd(v[variable],
                                  static_cast<std::uint32_t>(t)))
              return f.zero();
            return field_coeff(f, opt.seed, round, variable, occurrence);
          });
      total = f.add(total, out);
      ++res.iterations;
    }
    ++res.rounds_run;
    if (total != f.zero()) {
      res.found = true;
      res.found_round = round;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

/// Build the k-path walk circuit for a graph — the reduction of Section
/// III-D expressed through the generic interface (used by tests to check
/// the generic detector against the specialized one).
Circuit kpath_circuit(const graph::Graph& g, int k);

}  // namespace midas::core
