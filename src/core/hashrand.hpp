// Hash-derived randomness for the algebraic detection.
//
// Every random quantity the algorithm needs — the vector v_i in Z2^k per
// vertex, the per-(vertex, level) field coefficients r_{i,j}, and the
// per-(vertex, neighbor, size) extension coefficients sigma used by the
// scan-statistics polynomial — is a pure function of (seed, round, indices),
// computed by hashing. This has two payoffs in the distributed setting:
// no rank ever has to broadcast random tables (each recomputes exactly the
// values it touches), and the sequential and parallel implementations are
// bit-identical by construction, which the tests exploit.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace midas::core {

/// Mix an arbitrary number of 64-bit words into one hash.
inline std::uint64_t mix(std::uint64_t h) noexcept {
  SplitMix64 sm(h);
  return sm.next();
}

inline std::uint64_t hash_words(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c = 0x1234,
                                std::uint64_t d = 0x5678,
                                std::uint64_t e = 0x9abc) noexcept {
  std::uint64_t h = a;
  h = mix(h ^ (b + 0x9e3779b97f4a7c15ULL));
  h = mix(h ^ (c + 0xc2b2ae3d27d4eb4fULL));
  h = mix(h ^ (d + 0x165667b19e3779f9ULL));
  h = mix(h ^ (e + 0x27d4eb2f165667c5ULL));
  return h;
}

/// The random vector v_i in Z2^k for vertex i (low k bits of the hash).
inline std::uint32_t v_vector(std::uint64_t seed, int round, std::uint32_t i,
                              int k) noexcept {
  const std::uint64_t h = hash_words(seed, 0x76656374 /*'vect'*/,
                                     static_cast<std::uint64_t>(round), i);
  return static_cast<std::uint32_t>(h) & ((k >= 32) ? 0xFFFFFFFFu
                                                    : ((1u << k) - 1u));
}

/// <v, t> over GF(2): parity of the AND of the two bit vectors.
inline bool inner_product_odd(std::uint32_t v, std::uint32_t t) noexcept {
  return (__builtin_popcount(v & t) & 1) != 0;
}

/// Nonzero field coefficient r_{i,level} for a leaf use of vertex i.
/// `F` is any DetectionAlgebra; the value is folded into the field's range
/// and bumped to 1 if it lands on zero (a 2^-l bias, irrelevant here).
template <typename F>
typename F::value_type field_coeff(const F& f, std::uint64_t seed, int round,
                                   std::uint32_t i,
                                   std::uint32_t level) noexcept {
  const std::uint64_t h = hash_words(seed, 0x636f6566 /*'coef'*/,
                                     static_cast<std::uint64_t>(round), i,
                                     level);
  using V = typename F::value_type;
  const int bits = f.bits();
  const auto mask = (bits >= 64) ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << bits) - 1);
  auto v = static_cast<V>(h & mask);
  if (v == f.zero()) v = f.one();
  return v;
}

/// Nonzero shade coefficient u_{i,shade} for constrained (Graph Motif)
/// detection: the random multiplier of shade variable y_shade in the
/// substitution x_i = sum_{shade in mask_i} u_{i,shade} * y_shade (Koutis's
/// constrained-MLD construction). One value per (vertex, shade) per round.
template <typename F>
typename F::value_type shade_coeff(const F& f, std::uint64_t seed, int round,
                                   std::uint32_t i,
                                   std::uint32_t shade) noexcept {
  const std::uint64_t h = hash_words(seed, 0x73686164 /*'shad'*/,
                                     static_cast<std::uint64_t>(round), i,
                                     shade);
  using V = typename F::value_type;
  const int bits = f.bits();
  const auto mask = (bits >= 64) ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << bits) - 1);
  auto v = static_cast<V>(h & mask);
  if (v == f.zero()) v = f.one();
  return v;
}

/// Nonzero extension coefficient sigma_{i,u,size} for the scan-statistics
/// recurrence (attaching a subtree rooted at u to i when forming size j).
template <typename F>
typename F::value_type sigma_coeff(const F& f, std::uint64_t seed, int round,
                                   std::uint32_t i, std::uint32_t u,
                                   std::uint32_t size) noexcept {
  const std::uint64_t h =
      hash_words(seed, 0x7369676d /*'sigm'*/,
                 (static_cast<std::uint64_t>(round) << 32) | size, i, u);
  using V = typename F::value_type;
  const int bits = f.bits();
  const auto mask = (bits >= 64) ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << bits) - 1);
  auto v = static_cast<V>(h & mask);
  if (v == f.zero()) v = f.one();
  return v;
}

}  // namespace midas::core
