// Constrained multilinear detection — Graph Motif (Koutis arXiv:1206.3483,
// Björklund–Kaski–Kowalik arXiv:1209.1082).
//
// Question: does g contain a *connected* subgraph on k vertices whose color
// multiset equals the queried motif? The unconstrained k-MLD sieve cannot
// ask this — it only certifies that *some* multilinear degree-k term
// survives. The constrained construction adds per-color multiplicity bounds
// to the sieve itself: give the motif k "shades" (color c owns mu(c) of
// them, sum mu = k) and substitute every vertex variable by a random linear
// form over the shades of its own color,
//
//   x_i  ->  d_i(t) = XOR_{s in bits(t) & mask_i} u_{i,s},
//
// where mask_i is the bitmask of shades belonging to color(i) and u_{i,s}
// are fresh hash-derived GF(2^l) coefficients. Summing the connectivity
// polynomial over all 2^k shade subsets t keeps exactly the terms whose
// shade image is *all* of [k] (any proper subset appears an even number of
// times and cancels in characteristic 2). A surviving term therefore picks
// k distinct shades, one per vertex occurrence, each from its vertex's own
// color — i.e. the vertex set is (a) multilinear (a repeated vertex admits
// a shade-swap pairing that cancels) and (b) uses color c exactly mu(c)
// times. The survivor's coefficient is (parse-tree sigma sum) x
// prod_c perm(U_c), a nonzero polynomial of degree <= 2k-1 in the random
// values, so by Schwartz–Zippel a round errs with probability at most
// (2k-1)/2^l; "no" answers are always correct. The driver keeps the
// (4/5)^rounds amplification of the unconstrained sieve, which is valid
// whenever (2k-1)/2^l <= 4/5 (the service validates this bound).
//
// The connectivity polynomial is the scan-statistics recurrence without the
// weight axis: P(i,1) = d_i(t) and
//
//   P(i,j) = sum_{u in N(i)} sigma_{i,u,j} sum_{j1=1}^{j-1} P(i,j1) P(u,j-j1)
//
// with the decision value sum_i P(i,k) XOR-folded over *all* 2^k subsets
// (no 2^j cutoff: only the full-size layer is sieved). Both kernels below
// produce bit-identical per-round accumulators, and the distributed driver
// in detect_par.hpp replays the same hashes, so all execution tiers agree
// bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/detect_seq.hpp"
#include "core/hashrand.hpp"
#include "gf/bitsliced.hpp"
#include "gf/field.hpp"
#include "graph/csr.hpp"
#include "runtime/trace.hpp"
#include "util/require.hpp"

namespace midas::core {

/// Canonical shade assignment for a motif query. Shades are the k bit
/// positions of the iteration counter: shade s carries the s-th smallest
/// color of the motif multiset (ties broken by position, so each color owns
/// a contiguous run of shades), and a vertex's mask is the run of its own
/// color — empty when the color does not occur in the motif, which makes
/// the vertex inert in every iteration. Sorting makes the plan a pure
/// function of the *multiset*, so permuted motif lists are the same query.
struct ShadePlan {
  int k = 0;
  std::vector<std::uint32_t> shade_color;  // shade s -> color id (sorted)
  std::vector<std::uint32_t> vertex_mask;  // per vertex: allowed-shade bits
};

[[nodiscard]] inline ShadePlan make_shade_plan(
    const std::vector<std::uint32_t>& colors,
    const std::vector<std::uint32_t>& motif) {
  ShadePlan plan;
  plan.k = static_cast<int>(motif.size());
  MIDAS_REQUIRE(plan.k >= 1 && plan.k <= 28,
                "motif size must be in [1, 28]");
  plan.shade_color = motif;
  std::sort(plan.shade_color.begin(), plan.shade_color.end());
  std::unordered_map<std::uint32_t, std::uint32_t> mask_of;
  for (int s = 0; s < plan.k; ++s)
    mask_of[plan.shade_color[static_cast<std::size_t>(s)]] |= 1u << s;
  plan.vertex_mask.resize(colors.size(), 0);
  for (std::size_t i = 0; i < colors.size(); ++i) {
    const auto it = mask_of.find(colors[i]);
    if (it != mask_of.end()) plan.vertex_mask[i] = it->second;
  }
  return plan;
}

namespace detail_motif {

/// The scalar leaf value d_i(t): XOR of the shade coefficients selected by
/// the iteration's shade subset. `us[s]` must hold u_{i,s} for every shade
/// s in `mask` (other slots are never read).
template <typename V, typename F>
[[nodiscard]] inline V shade_value(const F& f, const V* us,
                                   std::uint32_t mask,
                                   std::uint32_t t) noexcept {
  V d = f.zero();
  std::uint32_t m = mask & t;
  while (m != 0) {
    d = f.add(d, us[__builtin_ctz(m)]);
    m &= m - 1;
  }
  return d;
}

/// Lane-periodic patterns for the six low shade bits: bit b of
/// kShadePeriod[s] is (b >> s) & 1, i.e. whether lane b's iteration has
/// shade s set (for a 64-aligned block base).
inline constexpr std::uint64_t kShadePeriod[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};

/// Fill one 64-lane block of leaf values d_i for iterations
/// [base, base + lanes). `us` holds the vertex's shade coefficients widened
/// to the bitsliced value type. Aligned bases take the plane-parallel path:
/// the shades >= 6 are constant across the block (broadcast of their XOR),
/// the low shades toggle with the lane index (one periodic mask each).
/// Unaligned bases — distributed phase boundaries need not be multiples of
/// 64 — fall back to per-lane scalar values packed into planes; both paths
/// produce the same exact field elements.
inline void shade_block(const gf::BitslicedGF& bs,
                        gf::BitslicedGF::word* dst,
                        const gf::BitslicedGF::value_type* us,
                        std::uint32_t mask, int k, std::uint64_t base,
                        int lanes) {
  using BS = gf::BitslicedGF;
  using word = BS::word;
  const int L = bs.words();
  if (mask == 0) {
    for (int p = 0; p < L; ++p) dst[p] = 0;
    return;
  }
  const word lane_mask =
      lanes >= BS::kLanes ? ~word{0} : ((word{1} << lanes) - 1);
  if ((base & (BS::kLanes - 1)) == 0) {
    BS::value_type c_hi = 0;
    for (int s = 6; s < k; ++s)
      if (((mask >> s) & 1u) != 0 && ((base >> s) & 1u) != 0) c_hi ^= us[s];
    bs.broadcast(dst, c_hi, lane_mask);
    for (int s = 0; s < 6 && s < k; ++s) {
      if (((mask >> s) & 1u) == 0) continue;
      const word pat = kShadePeriod[s] & lane_mask;
      const BS::value_type c = us[s];
      for (int p = 0; p < L; ++p)
        dst[p] ^= ((c >> p) & 1u) != 0 ? pat : word{0};
    }
  } else {
    BS::value_type vals[BS::kLanes] = {};
    for (int b = 0; b < lanes; ++b) {
      const auto t = static_cast<std::uint32_t>(base) +
                     static_cast<std::uint32_t>(b);
      BS::value_type d = 0;
      std::uint32_t m = mask & t;
      while (m != 0) {
        d ^= us[__builtin_ctz(m)];
        m &= m - 1;
      }
      vals[b] = d;
    }
    bs.pack_lanes(dst, vals, lanes);
  }
}

template <gf::GaloisField F>
DetectResult motif_scalar(const graph::Graph& g, const ShadePlan& plan,
                          const DetectOptions& opt, const F& f) {
  const int k = plan.k;
  const graph::VertexId n = g.num_vertices();
  DetectResult res;

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  // us[i * k + s] = u_{i,s}; only slots with shade s in mask_i are used.
  std::vector<V> us(static_cast<std::size_t>(n) * k);
  std::vector<std::vector<V>> vals(static_cast<std::size_t>(k) + 1);
  for (int j = 1; j <= k; ++j)
    vals[static_cast<std::size_t>(j)].resize(n);

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i) {
      const std::uint32_t mask = plan.vertex_mask[i];
      for (int s = 0; s < k; ++s)
        if (((mask >> s) & 1u) != 0)
          us[static_cast<std::size_t>(i) * k + s] = shade_coeff(
              f, opt.seed, round, i, static_cast<std::uint32_t>(s));
    }
    V total = f.zero();
    for (std::uint64_t t = 0; t < iters; ++t) {
      auto& base = vals[1];
      for (graph::VertexId i = 0; i < n; ++i)
        base[i] = shade_value(f, us.data() + static_cast<std::size_t>(i) * k,
                              plan.vertex_mask[i],
                              static_cast<std::uint32_t>(t));
      for (int j = 2; j <= k; ++j) {
        auto& out = vals[static_cast<std::size_t>(j)];
        std::fill(out.begin(), out.end(), f.zero());
        for (graph::VertexId i = 0; i < n; ++i) {
          for (graph::VertexId u : g.neighbors(i)) {
            const V sig = sigma_coeff(f, opt.seed, round, i, u,
                                      static_cast<std::uint32_t>(j));
            V conv = f.zero();
            for (int j1 = 1; j1 <= j - 1; ++j1)
              conv = f.add(
                  conv, f.mul(vals[static_cast<std::size_t>(j1)][i],
                              vals[static_cast<std::size_t>(j - j1)][u]));
            out[i] = f.add(out[i], f.mul(sig, conv));
          }
        }
      }
      V sum = f.zero();
      const auto& top = vals[static_cast<std::size_t>(k)];
      for (graph::VertexId i = 0; i < n; ++i) sum = f.add(sum, top[i]);
      total = f.add(total, sum);
      ++res.iterations;
    }
    ++res.rounds_run;
    res.round_totals.push_back(static_cast<std::uint64_t>(total));
    if (total != f.zero()) {
      if (!res.found) res.found_round = round;
      res.found = true;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

template <gf::Bitsliceable F>
DetectResult motif_bitsliced(const graph::Graph& g, const ShadePlan& plan,
                             const DetectOptions& opt, const F& f) {
  using BS = gf::BitslicedGF;
  using word = BS::word;
  using V = typename F::value_type;
  const BS bs(f);
  const int L = bs.words();
  const int k = plan.k;
  const graph::VertexId n = g.num_vertices();
  DetectResult res;

  const std::uint64_t iters = std::uint64_t{1} << k;
  const std::size_t nblocks =
      (iters + BS::kLanes - 1) / BS::kLanes;
  const std::size_t wpv = nblocks * static_cast<std::size_t>(L);
  auto lanes_of = [&](std::size_t blk) {
    return static_cast<int>(
        std::min<std::uint64_t>(BS::kLanes, iters - blk * BS::kLanes));
  };
  std::vector<BS::value_type> us(static_cast<std::size_t>(n) * k);
  std::vector<std::vector<word>> vals(static_cast<std::size_t>(k) + 1);
  for (int j = 1; j <= k; ++j)
    vals[static_cast<std::size_t>(j)].resize(
        static_cast<std::size_t>(n) * wpv);

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i) {
      const std::uint32_t mask = plan.vertex_mask[i];
      for (int s = 0; s < k; ++s)
        if (((mask >> s) & 1u) != 0)
          us[static_cast<std::size_t>(i) * k + s] =
              static_cast<BS::value_type>(shade_coeff(
                  f, opt.seed, round, i, static_cast<std::uint32_t>(s)));
    }
    auto& base = vals[1];
    for (graph::VertexId i = 0; i < n; ++i)
      for (std::size_t blk = 0; blk < nblocks; ++blk)
        shade_block(bs, &base[static_cast<std::size_t>(i) * wpv + blk * L],
                    us.data() + static_cast<std::size_t>(i) * k,
                    plan.vertex_mask[i], k, blk * BS::kLanes,
                    lanes_of(blk));
    for (int j = 2; j <= k; ++j) {
      auto& out = vals[static_cast<std::size_t>(j)];
      std::fill(out.begin(), out.end(), word{0});
      for (graph::VertexId i = 0; i < n; ++i) {
        for (graph::VertexId u : g.neighbors(i)) {
          const BS::Matrix sig =
              bs.matrix(static_cast<BS::value_type>(sigma_coeff(
                  f, opt.seed, round, i, u, static_cast<std::uint32_t>(j))));
          for (std::size_t blk = 0; blk < nblocks; ++blk) {
            word acc[16] = {};
            word prod[16];
            bool any = false;
            for (int j1 = 1; j1 <= j - 1; ++j1) {
              const word* a = &vals[static_cast<std::size_t>(j1)]
                                   [static_cast<std::size_t>(i) * wpv +
                                    blk * L];
              if (bs.is_zero(a)) continue;
              const word* b = &vals[static_cast<std::size_t>(j - j1)]
                                   [static_cast<std::size_t>(u) * wpv +
                                    blk * L];
              if (bs.is_zero(b)) continue;
              bs.mul(prod, a, b);
              bs.add_into(acc, prod);
              any = true;
            }
            if (!any) continue;
            word scaled[16];
            bs.mul_matrix(scaled, sig, acc);
            bs.add_into(&out[static_cast<std::size_t>(i) * wpv + blk * L],
                        scaled);
          }
        }
      }
    }
    V total = f.zero();
    const auto& top = vals[static_cast<std::size_t>(k)];
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
      word sum[16] = {};
      for (graph::VertexId i = 0; i < n; ++i)
        bs.add_into(sum, &top[static_cast<std::size_t>(i) * wpv + blk * L]);
      total = f.add(total, static_cast<V>(bs.fold_xor(sum)));
      res.iterations += static_cast<std::uint64_t>(lanes_of(blk));
    }
    ++res.rounds_run;
    res.round_totals.push_back(static_cast<std::uint64_t>(total));
    if (total != f.zero()) {
      if (!res.found) res.found_round = round;
      res.found = true;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

}  // namespace detail_motif

/// Sequential Graph Motif detection: is there a connected subgraph whose
/// color multiset equals `motif`? `colors[i]` is vertex i's color;
/// `motif.size()` is the subgraph size (DetectOptions::k is ignored).
/// "No" is always correct; a "yes" instance is missed with probability at
/// most (2k-1)/2^l per round (requires 2^l > 2k-1 to be meaningful; the
/// service enforces (2k-1)/2^l <= 4/5 so rounds() keeps its usual meaning).
template <gf::GaloisField F>
DetectResult detect_motif_seq(const graph::Graph& g,
                              const std::vector<std::uint32_t>& colors,
                              const std::vector<std::uint32_t>& motif,
                              const DetectOptions& opt, const F& f = F{}) {
  MIDAS_REQUIRE(colors.size() == g.num_vertices(),
                "one color per vertex required");
  const ShadePlan plan = make_shade_plan(colors, motif);
  if constexpr (gf::Bitsliceable<F>) {
    if (detail_seq::use_bitsliced(f, opt.kernel))
      return detail_motif::motif_bitsliced(g, plan, opt, f);
  } else {
    MIDAS_REQUIRE(opt.kernel != Kernel::kBitsliced,
                  "kernel=bitsliced requires a GF(2^l) field with l <= 16 "
                  "that exposes modulus() (GF256 or GFSmall)");
  }
  return detail_motif::motif_scalar(g, plan, opt, f);
}

}  // namespace midas::core
