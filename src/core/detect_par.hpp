// MIDAS — the distributed multilinear detection engine (paper Section IV).
//
// Structure (Fig. 1): N ranks are split into a = N/N1 phase groups of N1
// ranks; each group owns a full copy of the graph partition (rank g*N1+s
// owns part s) and processes every a-th phase. A phase evaluates N2
// consecutive iterations at once: per-vertex DP values become contiguous
// N2-wide vectors, and each of the k-1 halo exchanges per phase ships one
// batched message per neighboring part instead of N2 small ones — the
// batching/cache optimization of Section IV-B.
//
// Every rank's compute and communication are charged to its virtual clock
// (see runtime/cost_model.hpp), so the returned makespan is the modeled
// parallel runtime; results are bit-identical to the sequential detectors
// for the same seed because all randomness is hash-derived and the final
// accumulator is an XOR (order-independent) allreduce.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstring>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detect_seq.hpp"
#include "core/errors.hpp"
#include "core/hashrand.hpp"
#include "core/motif.hpp"
#include "core/schedule.hpp"
#include "core/tree_template.hpp"
#include "gf/bitsliced.hpp"
#include "gf/field.hpp"
#include "graph/csr.hpp"
#include "partition/partitioned_graph.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/comm.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace midas::core {

/// Durable-progress configuration (runtime/checkpoint.hpp). With a
/// non-empty `dir`, every driver snapshots its state at round boundaries
/// (and, for the clean k-path engine, optionally every `every_waves` phase
/// waves within a round); `resume = true` restores the newest verified
/// snapshot and continues from it, reproducing the uninterrupted run's
/// results bit-exactly. Snapshot rendezvous are charge-free, so enabling
/// checkpoints never changes virtual clocks or the fault schedule.
struct CheckpointConfig {
  std::string dir;               // empty = checkpointing disabled
  int every_rounds = 1;          // snapshot cadence in completed rounds
  std::uint64_t every_waves = 0; // mid-round cadence in phase waves (0=off)
  bool resume = false;           // restore the newest good snapshot first
  int keep = 2;                  // snapshots retained on disk
  // Caller RNG position (Xoshiro256::state() words), stored verbatim in
  // every snapshot so a restart can also restore its generator stream.
  std::vector<std::uint64_t> rng_state;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

/// Precomputed per-(seed, k) randomness for the k-path engine: the Z2^k
/// vectors v_i and per-level field coefficients r_{i,j} of every round,
/// laid out exactly as the engine consumes them (one array per (round,
/// part), level-major coefficients). The values are produced by the same
/// v_vector/field_coeff hashes the engine would otherwise evaluate on the
/// fly, so a run with tables is bit-identical to one without — the tables
/// only trade memory for the per-round hashing, which is what lets a query
/// service amortize them across repeated (graph, seed, k) workloads.
/// Coefficients are stored widened to 64 bits so one table type serves
/// every field; the engine narrows back to its value_type on load.
struct RandTables {
  std::uint64_t seed = 0;
  int k = 0;
  int rounds = 0;
  int parts = 0;
  /// v[round * parts + part][li] = v_vector(seed, round, gid(li), k).
  std::vector<std::vector<std::uint32_t>> v;
  /// coeff[round * parts + part][(j-1)*nl + li] = r_{gid(li), j}.
  std::vector<std::vector<std::uint64_t>> coeff;

  [[nodiscard]] const std::vector<std::uint32_t>& v_of(int round,
                                                       int part) const {
    return v[static_cast<std::size_t>(round) *
                 static_cast<std::size_t>(parts) +
             static_cast<std::size_t>(part)];
  }
  [[nodiscard]] const std::vector<std::uint64_t>& coeff_of(int round,
                                                           int part) const {
    return coeff[static_cast<std::size_t>(round) *
                     static_cast<std::size_t>(parts) +
                 static_cast<std::size_t>(part)];
  }
};

/// Build the randomness tables for `rounds` rounds of a k-path run over
/// `views` (one entry per part) in field `f`.
template <gf::GaloisField F>
[[nodiscard]] RandTables build_rand_tables(
    const std::vector<partition::PartView>& views, std::uint64_t seed, int k,
    int rounds, const F& f) {
  RandTables rt;
  rt.seed = seed;
  rt.k = k;
  rt.rounds = rounds;
  rt.parts = static_cast<int>(views.size());
  const std::size_t slots =
      static_cast<std::size_t>(rounds) * views.size();
  rt.v.resize(slots);
  rt.coeff.resize(slots);
  for (int round = 0; round < rounds; ++round)
    for (std::size_t p = 0; p < views.size(); ++p) {
      const auto& view = views[p];
      const std::uint32_t nl = view.num_local();
      auto& vt = rt.v[static_cast<std::size_t>(round) * views.size() + p];
      auto& ct =
          rt.coeff[static_cast<std::size_t>(round) * views.size() + p];
      vt.resize(nl);
      ct.resize(static_cast<std::size_t>(k) * nl);
      for (std::uint32_t li = 0; li < nl; ++li) {
        const graph::VertexId gid = view.vertices[li];
        vt[li] = v_vector(seed, round, gid, k);
        for (int j = 1; j <= k; ++j)
          ct[static_cast<std::size_t>(j - 1) * nl + li] =
              static_cast<std::uint64_t>(field_coeff(
                  f, seed, round, gid, static_cast<std::uint32_t>(j)));
      }
    }
  return rt;
}

struct MidasOptions {
  int k = 4;
  double epsilon = 0.05;
  std::uint64_t seed = 1;
  int n_ranks = 4;        // N
  int n1 = 2;             // ranks per phase group = graph parts
  std::uint32_t n2 = 16;  // iterations per phase (message batching)
  int max_rounds = 0;     // override epsilon-derived round count if > 0
  bool early_exit = true;
  // Inner-loop implementation (see detect_seq.hpp). The bit-sliced kernels
  // charge the same modeled work and ship byte-identical halo payloads as
  // the scalar ones, so virtual clocks, fault schedules, and checkpoint
  // snapshots are kernel-independent — a snapshot written under one kernel
  // resumes under the other bit-exactly.
  Kernel kernel = Kernel::kAuto;
  runtime::CostModel model{};
  // Fault injection & supervision (docs/RESILIENCE.md). Supervision is
  // forced on whenever the plan is non-empty; the k-path engine then runs
  // its vote/redo failover protocol and masks any failure that leaves at
  // least one intact phase group. spmd.watchdog arms the straggler
  // deadline (and, with speculate, engine-level re-execution of a
  // straggling phase group on the fast replicas).
  runtime::SpmdOptions spmd{};
  // Checkpoint/restart across *total* failures (docs/RESILIENCE.md).
  CheckpointConfig checkpoint{};
  // Optional precomputed randomness (non-owning; caller keeps it alive for
  // the duration of the run). Only the k-path engine consumes it; when set
  // it must match (seed, k, parts) and cover rounds() rounds. Results are
  // bit-identical with or without tables.
  const RandTables* rand_tables = nullptr;

  [[nodiscard]] int rounds() const {
    return max_rounds > 0 ? max_rounds : rounds_for_epsilon(epsilon);
  }
};

struct MidasResult {
  bool found = false;
  int rounds_run = 0;
  int found_round = -1;
  double vtime = 0.0;   // modeled parallel makespan (seconds)
  double wall_s = 0.0;  // host wall-clock of the whole SPMD run
  runtime::CommStats total_stats;
  std::vector<double> vclocks;      // per rank
  std::vector<int> failed_ranks;    // world ranks lost to injected faults
  int resumed_from_round = -1;      // snapshot round this run resumed at
};

namespace detail {

/// Supervision implied by a non-empty fault plan or armed speculation
/// (straggler re-execution needs the supervised vote/redo machinery).
[[nodiscard]] inline runtime::SpmdOptions effective_spmd(
    const MidasOptions& opt) {
  runtime::SpmdOptions sopt = opt.spmd;
  if (!sopt.faults.empty()) sopt.supervise = true;
  if (sopt.watchdog.speculate && sopt.watchdog.deadline_s > 0.0)
    sopt.supervise = true;
  return sopt;
}

/// Decide scalar vs bitsliced for a driver (the parallel twin of
/// detail_seq::use_bitsliced, with the typed options error). The weighted
/// k-path driver is scalar-only and ignores the request.
template <typename F>
[[nodiscard]] inline bool par_use_bitsliced(const F& f, Kernel kernel) {
  if constexpr (gf::Bitsliceable<F>) {
    if (kernel == Kernel::kScalar) return false;
    return f.bits() <= 16;
  } else {
    (void)f;
    require_options(kernel != Kernel::kBitsliced,
                    "kernel=bitsliced requires a GF(2^l) field with l <= 16 "
                    "that exposes modulus() (GF256 or GFSmall)");
    return false;
  }
}

/// Fingerprint of everything a snapshot's validity depends on: the engine,
/// the detection parameters, the rank/phase geometry, the execution mode
/// (supervised runs charge different virtual time than clean ones) and the
/// shape of the partitioned input. A resume whose fingerprint differs is
/// rejected — restoring accumulators into a different configuration would
/// silently corrupt the answer.
[[nodiscard]] inline std::uint64_t config_fingerprint(
    std::uint64_t engine_tag, const MidasOptions& opt,
    const runtime::SpmdOptions& sopt, std::size_t value_bytes,
    const std::vector<partition::PartView>& views, std::uint64_t extra = 0) {
  std::vector<std::uint64_t> w;
  w.reserve(16 + views.size() * 3);
  w.push_back(engine_tag);
  w.push_back(static_cast<std::uint64_t>(opt.k));
  w.push_back(opt.seed);
  std::uint64_t eps_bits = 0;
  std::memcpy(&eps_bits, &opt.epsilon, sizeof(eps_bits));
  w.push_back(eps_bits);
  w.push_back(static_cast<std::uint64_t>(opt.n_ranks));
  w.push_back(static_cast<std::uint64_t>(opt.n1));
  w.push_back(opt.n2);
  w.push_back(static_cast<std::uint64_t>(opt.rounds()));
  w.push_back(opt.early_exit ? 1 : 0);
  w.push_back(sopt.supervise ? 1 : 0);
  w.push_back(sopt.watchdog.speculate && sopt.watchdog.deadline_s > 0.0
                  ? 1
                  : 0);
  w.push_back(static_cast<std::uint64_t>(value_bytes));
  w.push_back(extra);
  for (const auto& view : views) {
    w.push_back(view.num_local());
    w.push_back(view.num_ghosts());
    w.push_back(view.adj.size());
  }
  return runtime::fnv1a(std::as_bytes(std::span<const std::uint64_t>(w)));
}

/// Host-side checkpoint bookkeeping for one driver invocation. The staged
/// snapshot is filled inside a snapshot_sync callback (every peer parked)
/// and persisted by world rank 0 immediately after the rendezvous.
struct CheckpointSession {
  std::optional<runtime::CheckpointStore> store;
  runtime::RoundCheckpoint loaded;  // meaningful when `resumed`
  bool resumed = false;
  runtime::RoundCheckpoint staged;
  bool staged_ok = false;

  [[nodiscard]] bool armed() const noexcept { return store.has_value(); }
};

/// Validate the checkpoint config, open the store and — on resume — load
/// and sanity-check the newest good snapshot, wiring its world state into
/// `sopt.resume`. `driver_bytes_per_round` is the driver_state stride;
/// `wave_accum_bytes` is the per-rank accumulator size for mid-round
/// snapshots (0 = this driver cannot resume mid-round).
inline CheckpointSession open_checkpoints(const MidasOptions& opt,
                                          runtime::SpmdOptions& sopt,
                                          std::uint64_t config_hash,
                                          std::size_t driver_bytes_per_round,
                                          std::size_t wave_accum_bytes) {
  CheckpointSession cs;
  if (!opt.checkpoint.enabled()) return cs;
  require_options(opt.checkpoint.every_rounds >= 1,
                  "checkpoint.every_rounds must be >= 1");
  require_options(opt.checkpoint.keep >= 1,
                  "checkpoint.keep must be >= 1");
  cs.store.emplace(opt.checkpoint.dir, opt.checkpoint.keep);
  if (!opt.checkpoint.resume) return cs;
  auto ck = cs.store->load_latest();
  if (!ck) return cs;  // nothing durable yet: cold start
  if (ck->config_hash != config_hash)
    throw runtime::CheckpointError(
        "snapshot in " + opt.checkpoint.dir +
        " was written by an incompatible run configuration");
  const auto nranks = static_cast<std::size_t>(opt.n_ranks);
  if (ck->vclocks.size() != nranks || ck->events.size() != nranks ||
      ck->stats.size() != nranks)
    throw runtime::CheckpointError("snapshot rank count mismatch");
  if (ck->next_round > static_cast<std::uint32_t>(opt.rounds()))
    throw runtime::CheckpointError("snapshot round index out of range");
  if (ck->driver_state.size() !=
      static_cast<std::size_t>(ck->next_round) * driver_bytes_per_round)
    throw runtime::CheckpointError("snapshot driver state size mismatch");
  if (ck->phase_waves_done > 0) {
    if (wave_accum_bytes == 0)
      throw runtime::CheckpointError(
          "mid-round snapshot is not resumable by this driver/mode");
    if (ck->accum.size() != nranks)
      throw runtime::CheckpointError("snapshot accumulator arity mismatch");
    for (const auto& a : ck->accum)
      if (a.size() != wave_accum_bytes)
        throw runtime::CheckpointError(
            "snapshot accumulator size mismatch");
  }
  sopt.resume.vclocks = ck->vclocks;
  sopt.resume.events = ck->events;
  sopt.resume.stats = ck->stats;
  cs.loaded = std::move(*ck);
  cs.resumed = true;
  return cs;
}

/// Collective snapshot capture + persist. All world ranks call with the
/// same arguments; any accumulator staging slots must have been written by
/// their owning ranks beforehand. Nothing is written if any rank already
/// failed — a consistent world is a precondition for a resumable one.
template <typename DriverStateFn>
void take_snapshot(runtime::Comm& world, CheckpointSession& cs,
                   std::uint64_t config_hash, int next_round,
                   std::uint64_t waves_done,
                   const std::vector<std::uint64_t>& rng_state,
                   const std::vector<std::vector<std::uint8_t>>& accum_stage,
                   DriverStateFn&& driver_state) {
  MIDAS_TRACE_SPAN("checkpoint.snapshot", {"next_round", next_round});
  world.snapshot_sync([&] {
    cs.staged_ok = false;
    if (!world.failed_world_ranks().empty()) return;
    cs.staged.config_hash = config_hash;
    cs.staged.next_round = static_cast<std::uint32_t>(next_round);
    cs.staged.phase_waves_done = waves_done;
    cs.staged.driver_state = driver_state();
    cs.staged.accum = accum_stage;
    cs.staged.vclocks = world.world_vclocks();
    cs.staged.events = world.world_event_counts();
    cs.staged.stats = world.world_stats_snapshot();
    cs.staged.rng_state = rng_state;
    cs.staged_ok = true;
  });
  // Only one rank touches the disk; peers that raced ahead will park at
  // the next rendezvous until the write returns.
  if (world.rank() == 0 && cs.staged_ok) (void)cs.store->write(cs.staged);
}

/// Lanes of the failure-view vote: every rank contributes the hash of its
/// failed-rank list; after a min/max allreduce, lo == hi iff all survivors
/// saw the same view.
struct HashRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Exchange one DP level: for each neighboring part, pack the batch-wide
/// values of the boundary vertices, alltoallv within the phase group, and
/// scatter incoming values into the ghost array.
template <typename V>
void halo_exchange(runtime::Comm& comm, const partition::PartView& view,
                   const std::vector<V>& local_vals,
                   std::vector<V>& ghost_vals, std::size_t batch) {
  MIDAS_TRACE_SPAN("engine.halo_exchange");
  const int p = comm.size();
  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) {
    const auto& list = view.send_to[static_cast<std::size_t>(t)];
    if (list.empty()) continue;
    auto& buf = send[static_cast<std::size_t>(t)];
    buf.resize(list.size() * batch * sizeof(V));
    std::byte* out = buf.data();
    for (std::uint32_t li : list) {
      std::memcpy(out, local_vals.data() + li * batch, batch * sizeof(V));
      out += batch * sizeof(V);
    }
    MIDAS_TRACE_COUNT("halo.messages", 1);
    MIDAS_TRACE_COUNT("halo.bytes", buf.size());
    MIDAS_TRACE_OBSERVE("halo.message_bytes", buf.size());
  }
  auto recv = comm.alltoallv(send);
  for (int t = 0; t < p; ++t) {
    const auto& targets = view.recv_from[static_cast<std::size_t>(t)];
    if (targets.empty()) continue;
    const auto& buf = recv[static_cast<std::size_t>(t)];
    MIDAS_ASSERT(buf.size() == targets.size() * batch * sizeof(V),
                 "halo message size mismatch");
    const std::byte* in = buf.data();
    for (std::uint32_t gi : targets) {
      std::memcpy(ghost_vals.data() + gi * batch, in, batch * sizeof(V));
      in += batch * sizeof(V);
    }
  }
}

/// Sum over local vertices and batch lanes, XORed into `total`.
template <gf::GaloisField F>
void accumulate_level(const F& f, const std::vector<typename F::value_type>& vals,
                      std::size_t count, typename F::value_type& total) {
  for (std::size_t idx = 0; idx < count; ++idx) total = f.add(total, vals[idx]);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// k-path
// ---------------------------------------------------------------------------

namespace detail {

/// Shared k-path engine: runs the distributed walk DP over prebuilt part
/// views. Undirected and directed fronts build their views differently
/// (symmetric halos vs in-neighbor halos) but share everything else.
template <gf::GaloisField F>
MidasResult kpath_engine(const std::vector<partition::PartView>& views,
                         const MidasOptions& opt, const F& f) {
  using V = typename F::value_type;
  require_options(opt.n1 >= 1 && opt.n1 <= opt.n_ranks &&
                      opt.n_ranks % opt.n1 == 0,
                  "N1 must divide N (phase groups need N/N1 whole replicas)");
  const Schedule sched =
      make_schedule(opt.k, opt.epsilon, opt.n_ranks, opt.n1, opt.n2);
  const int k = opt.k;
  const bool bitsliced = detail::par_use_bitsliced(f, opt.kernel);
  if (opt.rand_tables != nullptr)
    require_options(opt.rand_tables->seed == opt.seed &&
                        opt.rand_tables->k == opt.k &&
                        opt.rand_tables->parts ==
                            static_cast<int>(views.size()) &&
                        opt.rand_tables->rounds >= opt.rounds(),
                    "rand_tables do not match this run's "
                    "(seed, k, parts, rounds)");

  MidasResult result;
  Timer wall;
  // Shared flags written once per round under an allreduce barrier. Atomic
  // because on the supervised path every survivor records (idempotently):
  // a single designated writer could be killed between the failure vote
  // and its write, silently losing the round.
  std::vector<std::atomic<int>> round_found(
      static_cast<std::size_t>(opt.rounds()));
  runtime::SpmdOptions sopt = detail::effective_spmd(opt);

  // Checkpointing. The fingerprint covers the execution mode because the
  // supervised protocol charges different virtual time than the clean
  // path: a snapshot resumes only into the mode that wrote it.
  const std::uint64_t chash = detail::config_fingerprint(
      /*engine_tag=*/0x6b70617468ULL /* "kpath" */, opt, sopt, sizeof(V),
      views);
  detail::CheckpointSession cs = detail::open_checkpoints(
      opt, sopt, chash, /*driver_bytes_per_round=*/1,
      // Mid-round (wave) resume exists only on the clean path; supervised
      // snapshots are always taken at round boundaries.
      /*wave_accum_bytes=*/sopt.supervise ? 0 : sizeof(V));
  const int start_round = cs.resumed ? static_cast<int>(cs.loaded.next_round)
                                     : 0;
  const std::uint64_t start_wave = cs.resumed ? cs.loaded.phase_waves_done
                                              : 0;
  if (cs.resumed) {
    result.resumed_from_round = start_round;
    for (int r = 0; r < start_round; ++r)
      round_found[static_cast<std::size_t>(r)] =
          cs.loaded.driver_state[static_cast<std::size_t>(r)];
  }
  // Per-rank accumulator staging for mid-round snapshots: slot r is
  // written only by world rank r before the snapshot rendezvous reads it.
  std::vector<std::vector<std::uint8_t>> accum_stage(
      static_cast<std::size_t>(opt.n_ranks));
  auto driver_state_upto = [&round_found](int rounds_done) {
    std::vector<std::uint8_t> s(static_cast<std::size_t>(rounds_done));
    for (int r = 0; r < rounds_done; ++r)
      s[static_cast<std::size_t>(r)] =
          static_cast<std::uint8_t>(round_found[static_cast<std::size_t>(r)]);
    return s;
  };

  auto spmd = runtime::run_spmd(opt.n_ranks, opt.model, sopt,
                                [&](runtime::Comm& world) {
    const int group_color = world.rank() / opt.n1;
    // Supervised runs shrink world collectives over survivors; the phase
    // group keeps kThrow (the default for supervised split children): a
    // group that loses its member's graph part cannot continue.
    if (world.supervised())
      world.set_fail_policy(runtime::FailPolicy::kShrink);
    runtime::Comm group = world.split(group_color, world.rank() % opt.n1);
    // Setup done: on a resumed run, overwrite the re-charged setup state
    // with the snapshot's (no-op otherwise).
    world.resume_sync();
    // The part a rank owns is fixed by its world rank — never by its rank
    // in `group`, which shifts when the split excluded a dead member.
    const auto& view = views[static_cast<std::size_t>(world.rank() % opt.n1)];
    const std::uint32_t nl = view.num_local();
    const std::uint32_t ng = view.num_ghosts();

    std::vector<std::uint32_t> v(nl);
    std::vector<V> r(static_cast<std::size_t>(k) * nl);
    std::vector<V> cur, next, ghost, scratch;
    std::vector<std::uint8_t> live_q;

    // Bit-sliced state (gf/bitsliced.hpp). Halo payloads stay in the scalar
    // byte layout — boundary blocks are transposed to values on send and
    // ghosts transposed back on receive — and every charge_* call mirrors
    // the scalar kernel, so clocks, messages, snapshots, and the failover
    // protocol are identical across kernels.
    std::optional<gf::BitslicedGF> bse;
    std::vector<std::uint64_t> bcur, bnext, bghost, blive;
    std::vector<V> cur_s, ghost_s;
    std::vector<gf::BitslicedGF::Matrix> mats;
    // Boundary vertices (lane blocks serialized into halo payloads) are
    // precomputed on the view, so a cached view costs no per-run setup.
    const std::vector<std::uint32_t>& boundary = view.boundary;
    if constexpr (gf::Bitsliceable<F>) {
      if (bitsliced) {
        bse.emplace(f);
        mats.resize(static_cast<std::size_t>(k - 1) * nl);
      }
    }

    // One phase of the walk DP: the N2-wide base case plus k-1
    // halo-exchanged inductive levels, XOR-accumulated into `total`.
    // XOR makes this self-inverse: running the same phase twice removes
    // its contribution again, which is how the failover protocol moves
    // phases between groups without a separate "undo" path.
    auto compute_phase_scalar = [&](std::uint64_t phase, V& total) {
      const auto [q0, q1] = sched.phase_range(phase);
      const std::size_t batch = q1 - q0;
      cur.assign(static_cast<std::size_t>(nl) * batch, f.zero());
      next.assign(static_cast<std::size_t>(nl) * batch, f.zero());
      ghost.assign(static_cast<std::size_t>(ng) * batch, f.zero());
      scratch.assign(batch, f.zero());
      live_q.assign(static_cast<std::size_t>(nl) * batch, 0);

      // Memory model: each level streams the local adjacency plus the
      // active state arrays; the resident working set decides hot/cold.
      const std::uint64_t adj_bytes =
          view.adj.size() * sizeof(partition::NbrRef) +
          view.adj_offsets.size() * sizeof(std::uint64_t);
      const std::uint64_t state_bytes =
          (static_cast<std::uint64_t>(nl) * 2 + ng) * batch * sizeof(V);
      const std::uint64_t working_set =
          adj_bytes + state_bytes + r.size() * sizeof(V);

      // Base case P(i, q, 1); the liveness flags are per (vertex,
      // iteration), so compute them once and reuse across all k levels.
      for (std::uint32_t li = 0; li < nl; ++li) {
        V* row = cur.data() + static_cast<std::size_t>(li) * batch;
        std::uint8_t* lq =
            live_q.data() + static_cast<std::size_t>(li) * batch;
        const V r1 = r[li];
        for (std::size_t b = 0; b < batch; ++b) {
          const auto q = static_cast<std::uint32_t>(q0 + b);
          lq[b] = inner_product_odd(v[li], q) ? 0 : 1;
          row[b] = lq[b] ? r1 : f.zero();
        }
      }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);

      // Inductive steps with one halo exchange per level.
      for (int j = 2; j <= k; ++j) {
        detail::halo_exchange(group, view, cur, ghost, batch);
        const V* rj = r.data() + static_cast<std::size_t>(j - 1) * nl;
        std::uint64_t ops = 0;
        for (std::uint32_t li = 0; li < nl; ++li) {
          V* out = next.data() + static_cast<std::size_t>(li) * batch;
          // Accumulate neighbor values lane-wise into the scratch row.
          std::fill(scratch.begin(), scratch.end(), f.zero());
          const auto begin = view.adj_offsets[li];
          const auto end = view.adj_offsets[li + 1];
          for (auto e = begin; e < end; ++e) {
            const auto ref = view.adj[e];
            const V* src =
                ref.is_ghost()
                    ? ghost.data() +
                          static_cast<std::size_t>(ref.index()) * batch
                    : cur.data() +
                          static_cast<std::size_t>(ref.index()) * batch;
            for (std::size_t b = 0; b < batch; ++b)
              scratch[b] = f.add(scratch[b], src[b]);
          }
          ops += (end - begin) * batch;
          // Gate by liveness, then scale the whole row by the level
          // coefficient — one log lookup for the row via scale_add/axpy.
          const std::uint8_t* lq =
              live_q.data() + static_cast<std::size_t>(li) * batch;
          for (std::size_t b = 0; b < batch; ++b)
            if (!lq[b]) scratch[b] = f.zero();
          std::fill(out, out + batch, f.zero());
          gf::scale_add_row(f, out, rj[li], scratch.data(), batch);
          ops += batch;
        }
        world.charge_compute(ops);
        // Kernel traffic: every adjacency entry pulls a batch-wide row of
        // neighbor state (random access), plus one pass over adjacency.
        world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
        std::swap(cur, next);
      }
      detail::accumulate_level(f, cur,
                               static_cast<std::size_t>(nl) * batch, total);
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
    };

    // The same phase, bit-sliced: ceil(batch/64) 64-lane blocks per vertex,
    // liveness as parity masks, constant scaling as plane matrices. Generic
    // lambda so the body only instantiates for Bitsliceable fields.
    auto compute_phase_bs = [&](const auto& bs, std::uint64_t phase,
                                V& total) {
      using BS = gf::BitslicedGF;
      using word = BS::word;
      const int L = bs.words();
      const auto [q0, q1] = sched.phase_range(phase);
      const std::size_t batch = q1 - q0;
      const std::size_t nblocks = (batch + BS::kLanes - 1) / BS::kLanes;
      const std::size_t wpv = nblocks * static_cast<std::size_t>(L);
      bcur.assign(static_cast<std::size_t>(nl) * wpv, 0);
      bnext.assign(static_cast<std::size_t>(nl) * wpv, 0);
      bghost.assign(static_cast<std::size_t>(ng) * wpv, 0);
      blive.assign(static_cast<std::size_t>(nl) * nblocks, 0);
      cur_s.assign(static_cast<std::size_t>(nl) * batch, f.zero());
      ghost_s.assign(static_cast<std::size_t>(ng) * batch, f.zero());

      const std::uint64_t adj_bytes =
          view.adj.size() * sizeof(partition::NbrRef) +
          view.adj_offsets.size() * sizeof(std::uint64_t);
      const std::uint64_t state_bytes =
          (static_cast<std::uint64_t>(nl) * 2 + ng) * batch * sizeof(V);
      const std::uint64_t working_set =
          adj_bytes + state_bytes + r.size() * sizeof(V);
      auto lanes_of = [&](std::size_t blk) {
        return static_cast<int>(
            std::min<std::size_t>(BS::kLanes, batch - blk * BS::kLanes));
      };

      // Base case: one parity mask per (vertex, block), level-1 coefficient
      // broadcast into the live lanes.
      for (std::uint32_t li = 0; li < nl; ++li)
        for (std::size_t blk = 0; blk < nblocks; ++blk) {
          const word m =
              BS::live_mask(v[li], q0 + blk * BS::kLanes, lanes_of(blk));
          blive[static_cast<std::size_t>(li) * nblocks + blk] = m;
          bs.broadcast(&bcur[static_cast<std::size_t>(li) * wpv + blk * L],
                       static_cast<BS::value_type>(r[li]), m);
        }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);

      for (int j = 2; j <= k; ++j) {
        // Halo in the scalar byte layout: transpose boundary blocks to
        // values, exchange, transpose ghosts back to planes.
        for (std::uint32_t li : boundary)
          for (std::size_t blk = 0; blk < nblocks; ++blk)
            bs.unpack_lanes(
                cur_s.data() + static_cast<std::size_t>(li) * batch +
                    blk * BS::kLanes,
                &bcur[static_cast<std::size_t>(li) * wpv + blk * L],
                lanes_of(blk));
        detail::halo_exchange(group, view, cur_s, ghost_s, batch);
        for (std::uint32_t gi = 0; gi < ng; ++gi)
          for (std::size_t blk = 0; blk < nblocks; ++blk)
            bs.pack_lanes(
                &bghost[static_cast<std::size_t>(gi) * wpv + blk * L],
                ghost_s.data() + static_cast<std::size_t>(gi) * batch +
                    blk * BS::kLanes,
                lanes_of(blk));

        const gf::BitslicedGF::Matrix* mj =
            mats.data() + static_cast<std::size_t>(j - 2) * nl;
        for (std::uint32_t li = 0; li < nl; ++li) {
          const auto begin = view.adj_offsets[li];
          const auto end = view.adj_offsets[li + 1];
          for (std::size_t blk = 0; blk < nblocks; ++blk) {
            word* out = &bnext[static_cast<std::size_t>(li) * wpv + blk * L];
            const word m =
                blive[static_cast<std::size_t>(li) * nblocks + blk];
            if (m == 0) {
              bs.clear(out);
              continue;
            }
            word acc[16] = {};
            for (auto e = begin; e < end; ++e) {
              const auto ref = view.adj[e];
              const word* src =
                  ref.is_ghost()
                      ? &bghost[static_cast<std::size_t>(ref.index()) * wpv +
                                blk * L]
                      : &bcur[static_cast<std::size_t>(ref.index()) * wpv +
                              blk * L];
              bs.add_into(acc, src);
            }
            bs.mul_matrix(out, mj[li], acc);
            bs.mask_block(out, m);
          }
        }
        // Charge the same logical work as the scalar kernel: one add per
        // adjacency entry per lane, one gate/scale per vertex-lane.
        const std::uint64_t ops =
            (view.adj.size() + nl) * static_cast<std::uint64_t>(batch);
        world.charge_compute(ops);
        world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
        std::swap(bcur, bnext);
      }
      for (std::size_t blk = 0; blk < nblocks; ++blk) {
        word sum[16] = {};
        for (std::uint32_t li = 0; li < nl; ++li)
          bs.add_into(sum, &bcur[static_cast<std::size_t>(li) * wpv + blk * L]);
        total = f.add(total, static_cast<V>(bs.fold_xor(sum)));
      }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
    };

    auto compute_phase = [&](std::uint64_t phase, V& total) {
      MIDAS_TRACE_SPAN(bitsliced ? "engine.phase.bitsliced"
                                 : "engine.phase.scalar",
                       {"phase", static_cast<std::int64_t>(phase)});
      [[maybe_unused]] const double vt0 = world.vclock();
      if constexpr (gf::Bitsliceable<F>) {
        if (bitsliced) {
          compute_phase_bs(*bse, phase, total);
          MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                              (world.vclock() - vt0) * 1e9);
          return;
        }
      }
      compute_phase_scalar(phase, total);
      MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                          (world.vclock() - vt0) * 1e9);
    };

    for (int round = start_round; round < opt.rounds(); ++round) {
      MIDAS_TRACE_SPAN("engine.round", {"round", round});
      if (opt.rand_tables != nullptr) {
        // Cached randomness: same hash values, precomputed once per
        // (seed, k) and shared across queries (see RandTables).
        const int my_part = world.rank() % opt.n1;
        const auto& vt = opt.rand_tables->v_of(round, my_part);
        const auto& ct = opt.rand_tables->coeff_of(round, my_part);
        std::copy(vt.begin(), vt.end(), v.begin());
        for (std::size_t idx = 0; idx < r.size(); ++idx)
          r[idx] = static_cast<V>(ct[idx]);
      } else {
        for (std::uint32_t li = 0; li < nl; ++li) {
          const graph::VertexId gid = view.vertices[li];
          v[li] = v_vector(opt.seed, round, gid, k);
          for (int j = 1; j <= k; ++j)
            r[static_cast<std::size_t>(j - 1) * nl + li] = field_coeff(
                f, opt.seed, round, gid, static_cast<std::uint32_t>(j));
        }
      }
      if constexpr (gf::Bitsliceable<F>) {
        // Level coefficients are fixed per round: build their multiply
        // matrices once, amortized over every phase and failover redo.
        if (bitsliced)
          for (int j = 2; j <= k; ++j)
            for (std::uint32_t li = 0; li < nl; ++li)
              mats[static_cast<std::size_t>(j - 2) * nl + li] =
                  bse->matrix(static_cast<gf::BitslicedGF::value_type>(
                      r[static_cast<std::size_t>(j - 1) * nl + li]));
      }
      V total = f.zero();
      // Round-boundary snapshot cadence; uniform across ranks (the early-
      // exit guard reads the shared allreduce result), which a collective
      // rendezvous requires.
      auto round_snapshot_due = [&](int done, bool found) {
        return cs.armed() && done % opt.checkpoint.every_rounds == 0 &&
               done < opt.rounds() && !(opt.early_exit && found);
      };

      if (!world.supervised()) {
        // Clean fast path — identical collective sequence to the original
        // engine (paper's MPIREDUCE per round). Phases are walked as
        // uniform waves (wave w = phase group_color + w*a) so that every
        // rank hits an optional mid-round snapshot rendezvous in lockstep
        // even though groups own unequal phase counts.
        std::uint64_t w0 = 0;
        if (round == start_round && start_wave > 0) {
          // Mid-round resume: the restored accumulator already folds the
          // first `start_wave` waves of this round.
          w0 = start_wave;
          std::memcpy(&total,
                      cs.loaded.accum[static_cast<std::size_t>(world.rank())]
                          .data(),
                      sizeof(V));
        }
        const std::uint64_t waves = sched.batches();
        for (std::uint64_t w = w0; w < waves; ++w) {
          MIDAS_TRACE_SPAN("engine.wave",
                           {"wave", static_cast<std::int64_t>(w)});
          const std::uint64_t phase =
              static_cast<std::uint64_t>(group_color) + w * sched.groups();
          if (phase < sched.phases()) compute_phase(phase, total);
          if (cs.armed() && opt.checkpoint.every_waves > 0 &&
              w + 1 < waves && (w + 1) % opt.checkpoint.every_waves == 0) {
            auto& slot = accum_stage[static_cast<std::size_t>(world.rank())];
            slot.resize(sizeof(V));
            std::memcpy(slot.data(), &total, sizeof(V));
            detail::take_snapshot(world, cs, chash, round, w + 1,
                                  opt.checkpoint.rng_state, accum_stage,
                                  [&] { return driver_state_upto(round); });
          }
        }
        V buf = total;
        world.allreduce<V>(std::span<V>(&buf, 1),
                           [&f](V& a, const V& b) { a = f.add(a, b); });
        if (world.rank() == 0 && buf != f.zero())
          round_found[static_cast<std::size_t>(round)] = 1;
        world.barrier();
        if (round_snapshot_due(round + 1, buf != f.zero())) {
          accum_stage[static_cast<std::size_t>(world.rank())].clear();
          detail::take_snapshot(world, cs, chash, round + 1, 0,
                                opt.checkpoint.rng_state, accum_stage,
                                [&] { return driver_state_upto(round + 1); });
        }
        if (opt.early_exit && buf != f.zero()) break;
        continue;
      }

      // Supervised: speculative compute, then the vote/redo protocol
      // (docs/RESILIENCE.md). `have` lists the phases whose contributions
      // are currently folded into `total` (the round-level checkpoint is
      // the per-round allreduce itself: completed rounds are never redone).
      std::vector<std::uint64_t> have;
      std::vector<int> slow_groups;
      const bool watchdog_armed = sopt.watchdog.speculate &&
                                  sopt.watchdog.deadline_s > 0.0 &&
                                  sched.groups() > 1;
      bool computing = group.size() == opt.n1 && !group.any_peer_failed();
      if (watchdog_armed) {
        // Probe wave: each intact group computes only its first owned
        // phase, then every rank compares virtual clocks. A group lagging
        // the fastest one by more than the deadline is voted a straggler
        // and its phases are dealt to the fast groups below — the same
        // redo path that covers dead groups (speculative re-execution).
        if (computing) {
          try {
            if (static_cast<std::uint64_t>(group_color) < sched.phases()) {
              compute_phase(static_cast<std::uint64_t>(group_color), total);
              have.push_back(static_cast<std::uint64_t>(group_color));
            }
          } catch (const runtime::RankFailedError&) {
            total = f.zero();
            have.clear();
            computing = false;
          }
        }
        slow_groups =
            world.straggling_groups(opt.n1, sopt.watchdog.deadline_s);
        if (!slow_groups.empty())
          MIDAS_TRACE_INSTANT(
              "watchdog.straggler_vote",
              {"slow_groups",
               static_cast<std::int64_t>(slow_groups.size())});
        // A straggler stops speculating on its own phases; whether its
        // probe contribution survives is decided uniformly in the vote
        // loop (it does only when no fast group is left to take over).
        if (std::binary_search(slow_groups.begin(), slow_groups.end(),
                               group_color))
          computing = false;
      }
      if (computing) {
        const std::uint64_t first_own =
            static_cast<std::uint64_t>(group_color) +
            (watchdog_armed ? static_cast<std::uint64_t>(sched.groups())
                            : 0u);
        try {
          for (std::uint64_t phase = first_own; phase < sched.phases();
               phase += sched.groups()) {
            compute_phase(phase, total);
            have.push_back(phase);
          }
        } catch (const runtime::RankFailedError&) {
          // A group member died mid-round: this group's shares cannot be
          // completed, so discard them — intact groups recompute the
          // whole set of our phases.
          total = f.zero();
          have.clear();
        }
      }

      V reduced = f.zero();
      std::uint64_t agreed = 0;
      bool reduced_valid = false;
      std::vector<int> agreed_failed;
      while (true) {
        // Vote on the failure view. The min/max result is shared, so the
        // decision below is uniform across survivors — nobody can break
        // out of the loop while a peer redoes, which would deadlock.
        std::vector<int> failed = world.failed_world_ranks();
        detail::HashRange hr;
        hr.lo = hr.hi = runtime::fnv1a(
            std::as_bytes(std::span<const int>(failed)));
        world.allreduce<detail::HashRange>(
            std::span<detail::HashRange>(&hr, 1),
            [](detail::HashRange& a, const detail::HashRange& b) {
              a.lo = std::min(a.lo, b.lo);
              a.hi = std::max(a.hi, b.hi);
            });
        if (hr.lo != hr.hi) continue;  // views diverged: re-read, re-vote
        if (reduced_valid && hr.lo == agreed) break;  // stable: accept
        agreed = hr.lo;
        agreed_failed = std::move(failed);
        MIDAS_TRACE_INSTANT(
            "failover.vote",
            {"round", round},
            {"failed", static_cast<std::int64_t>(agreed_failed.size())});
        MIDAS_TRACE_COUNT("failover.votes", 1);

        std::vector<int> dead_groups, intact_groups;
        for (int g = 0; g < sched.groups(); ++g) {
          bool dead = false;
          for (int s = 0; s < opt.n1 && !dead; ++s)
            dead = std::binary_search(agreed_failed.begin(),
                                      agreed_failed.end(), g * opt.n1 + s);
          (dead ? dead_groups : intact_groups).push_back(g);
        }
        if (intact_groups.empty())
          throw runtime::UnrecoverableFaultError(
              "every phase group lost a member; no intact graph replica "
              "left to recompute their phases");

        // Donors hand their phases over; workers recompute them. Dead
        // groups always donate. Straggling-but-intact groups donate too,
        // unless *every* intact group straggles — then nobody is faster
        // and the flag is moot. All inputs (dead/intact from the agreed
        // vote, slow_groups from a shared allreduce) are uniform across
        // survivors, so every rank reaches the same split.
        std::vector<int> donor_groups = dead_groups;
        std::vector<int> worker_groups = intact_groups;
        if (!slow_groups.empty()) {
          std::vector<int> fast;
          std::set_difference(intact_groups.begin(), intact_groups.end(),
                              slow_groups.begin(), slow_groups.end(),
                              std::back_inserter(fast));
          if (!fast.empty()) {
            worker_groups = std::move(fast);
            std::set_intersection(slow_groups.begin(), slow_groups.end(),
                                  intact_groups.begin(),
                                  intact_groups.end(),
                                  std::back_inserter(donor_groups));
            std::sort(donor_groups.begin(), donor_groups.end());
          }
        }

        if (!std::binary_search(worker_groups.begin(), worker_groups.end(),
                                group_color)) {
          // My group is incomplete (or voted a straggler): its
          // contribution (including any phase shares already finished) is
          // recomputed by the worker groups, so we must contribute
          // exactly zero.
          total = f.zero();
          have.clear();
        } else {
          std::vector<std::uint64_t> want;
          for (std::uint64_t phase = group_color; phase < sched.phases();
               phase += sched.groups())
            want.push_back(phase);
          const auto extra = failover_phases(sched, donor_groups,
                                             worker_groups, group_color);
          want.insert(want.end(), extra.begin(), extra.end());
          std::sort(want.begin(), want.end());
          std::vector<std::uint64_t> delta;
          std::set_symmetric_difference(want.begin(), want.end(),
                                        have.begin(), have.end(),
                                        std::back_inserter(delta));
          if (!delta.empty()) {
            MIDAS_TRACE_INSTANT(
                "failover.redo",
                {"phases", static_cast<std::int64_t>(delta.size())});
            MIDAS_TRACE_COUNT("failover.phases_redone", delta.size());
          }
          try {
            // XOR self-inverse: phases entering `want` are added, phases
            // leaving it are cancelled — both by the same computation.
            for (std::uint64_t phase : delta) compute_phase(phase, total);
            have = std::move(want);
          } catch (const runtime::RankFailedError&) {
            total = f.zero();
            have.clear();
          }
        }

        reduced = total;
        world.allreduce<V>(std::span<V>(&reduced, 1),
                           [&f](V& a, const V& b) { a = f.add(a, b); });
        reduced_valid = true;
        // Loop back to the vote: if a rank died before this allreduce
        // completed, its contribution is missing — the next vote sees the
        // changed view and redoes the reduction.
      }

      // Every survivor records the (shared, agreed) reduction. A single
      // designated writer would be a correctness hole: kills fire at comm
      // events, so the writer can die inside the very vote that the other
      // ranks accepted — nobody would loop back to observe the death, and
      // the round's found bit would be silently lost while the service
      // retry layer sees a clean (wrong) completion. Idempotent atomic
      // stores of 1 make the recording death-proof instead.
      if (reduced != f.zero())
        round_found[static_cast<std::size_t>(round)] = 1;
      // Snapshot only failure-free rounds: `agreed_failed` is the voted
      // (hence uniform) failure view, so all survivors skip or rendezvous
      // together. A round completed via failover is still correct but its
      // rank state is not a clean resume point — the next fault-free
      // boundary snapshots instead.
      if (agreed_failed.empty() &&
          round_snapshot_due(round + 1, reduced != f.zero())) {
        accum_stage[static_cast<std::size_t>(world.rank())].clear();
        detail::take_snapshot(world, cs, chash, round + 1, 0,
                              opt.checkpoint.rng_state, accum_stage,
                              [&] { return driver_state_upto(round + 1); });
      }
      if (opt.early_exit && reduced != f.zero()) break;
    }
  });

  // Failover masks any failure that leaves an intact group; if nobody
  // survived to finish the rounds, surface the typed fault instead of
  // returning an all-zero (silently wrong) answer.
  if (static_cast<int>(spmd.failed_ranks.size()) == opt.n_ranks &&
      spmd.first_error)
    std::rethrow_exception(spmd.first_error);
  result.wall_s = wall.elapsed_s();
  result.vtime = spmd.makespan;
  result.total_stats = spmd.total;
  result.vclocks = spmd.vclocks;
  result.failed_ranks = spmd.failed_ranks;
  for (int round = 0; round < opt.rounds(); ++round) {
    ++result.rounds_run;
    if (round_found[static_cast<std::size_t>(round)]) {
      result.found = true;
      result.found_round = round;
      break;
    }
  }
  if (!opt.early_exit) result.rounds_run = opt.rounds();
  return result;
}

}  // namespace detail

/// Distributed k-path detection. `part` must have exactly opt.n1 parts.
template <gf::GaloisField F>
MidasResult midas_kpath(const graph::Graph& g,
                        const partition::Partition& part,
                        const MidasOptions& opt, const F& f = F{}) {
  detail::require_options(part.parts == opt.n1,
                          "partition must have N1 parts");
  return detail::kpath_engine(partition::build_part_views(g, part), opt, f);
}

/// Distributed k-path detection over *pre-built* part views — the entry
/// point for callers (the detection service, repeated-query sweeps) that
/// amortize `build_part_views` across runs. Bit-identical to midas_kpath
/// on the views built from the same (graph, partition).
template <gf::GaloisField F>
MidasResult midas_kpath_views(const std::vector<partition::PartView>& views,
                              const MidasOptions& opt, const F& f = F{}) {
  detail::require_options(static_cast<int>(views.size()) == opt.n1,
                          "views must have N1 parts");
  return detail::kpath_engine(views, opt, f);
}

/// Distributed *directed* k-path detection: the same engine over
/// in-neighbor halo views (see partition::build_dipart_views).
template <gf::GaloisField F>
MidasResult midas_kpath_directed(const graph::DiGraph& g,
                                 const partition::Partition& part,
                                 const MidasOptions& opt, const F& f = F{}) {
  detail::require_options(part.parts == opt.n1,
                          "partition must have N1 parts");
  return detail::kpath_engine(partition::build_dipart_views(g, part), opt,
                              f);
}

// ---------------------------------------------------------------------------
// k-tree
// ---------------------------------------------------------------------------

/// Distributed k-tree detection over pre-built part views (the
/// artifact-cached twin of midas_ktree; see midas_kpath_views).
template <gf::GaloisField F>
MidasResult midas_ktree_views(const std::vector<partition::PartView>& views,
                              const TreeDecomposition& td,
                              const MidasOptions& opt, const F& f = F{}) {
  using V = typename F::value_type;
  detail::require_options(static_cast<int>(views.size()) == opt.n1,
                          "views must have N1 parts");
  detail::require_options(td.k() == opt.k, "template size must equal opt.k");
  detail::require_options(opt.n1 >= 1 && opt.n1 <= opt.n_ranks &&
                              opt.n_ranks % opt.n1 == 0,
                          "N1 must divide N (phase groups need N/N1 whole "
                          "replicas)");
  const Schedule sched =
      make_schedule(opt.k, opt.epsilon, opt.n_ranks, opt.n1, opt.n2);
  const int k = opt.k;
  const bool bitsliced = detail::par_use_bitsliced(f, opt.kernel);
  const auto& subs = td.subtemplates();

  // Which subtemplates ever appear as a child2 (their values cross parts).
  std::vector<bool> needs_exchange(subs.size(), false);
  for (const auto& sub : subs)
    if (sub.child1 >= 0)
      needs_exchange[static_cast<std::size_t>(sub.child2)] = true;

  MidasResult result;
  Timer wall;
  std::vector<int> round_found(static_cast<std::size_t>(opt.rounds()), 0);
  // No failover here (only the k-path engine masks failures), but faults
  // still terminate with typed errors instead of hangs.
  runtime::SpmdOptions sopt = detail::effective_spmd(opt);

  // The decomposition shape feeds the config fingerprint: resuming a
  // snapshot against a different template must be rejected.
  std::uint64_t tmpl_hash = 0;
  {
    std::vector<std::uint64_t> tw;
    tw.reserve(subs.size() * 3 + 1);
    tw.push_back(static_cast<std::uint64_t>(td.root_id()));
    for (const auto& sub : subs) {
      tw.push_back(static_cast<std::uint64_t>(sub.child1));
      tw.push_back(static_cast<std::uint64_t>(sub.child2));
      tw.push_back(static_cast<std::uint64_t>(sub.template_vertex));
    }
    tmpl_hash =
        runtime::fnv1a(std::as_bytes(std::span<const std::uint64_t>(tw)));
  }
  const std::uint64_t chash = detail::config_fingerprint(
      /*engine_tag=*/0x6b74726565ULL /* "ktree" */, opt, sopt, sizeof(V),
      views, tmpl_hash);
  detail::CheckpointSession cs = detail::open_checkpoints(
      opt, sopt, chash, /*driver_bytes_per_round=*/1,
      /*wave_accum_bytes=*/0);  // round-boundary snapshots only
  const int start_round = cs.resumed ? static_cast<int>(cs.loaded.next_round)
                                     : 0;
  if (cs.resumed) {
    result.resumed_from_round = start_round;
    for (int r = 0; r < start_round; ++r)
      round_found[static_cast<std::size_t>(r)] =
          cs.loaded.driver_state[static_cast<std::size_t>(r)];
  }
  std::vector<std::vector<std::uint8_t>> accum_stage(
      static_cast<std::size_t>(opt.n_ranks));
  auto driver_state_upto = [&round_found](int rounds_done) {
    std::vector<std::uint8_t> s(static_cast<std::size_t>(rounds_done));
    for (int r = 0; r < rounds_done; ++r)
      s[static_cast<std::size_t>(r)] =
          static_cast<std::uint8_t>(round_found[static_cast<std::size_t>(r)]);
    return s;
  };

  auto spmd = runtime::run_spmd(opt.n_ranks, opt.model, sopt,
                                [&](runtime::Comm& world) {
    const int group_color = world.rank() / opt.n1;
    runtime::Comm group = world.split(group_color, world.rank() % opt.n1);
    world.resume_sync();
    const auto& view = views[static_cast<std::size_t>(group.rank())];
    const std::uint32_t nl = view.num_local();
    const std::uint32_t ng = view.num_ghosts();

    std::vector<std::uint32_t> v(nl);
    std::vector<std::vector<V>> vals(subs.size());
    std::vector<std::vector<V>> ghost(subs.size());

    // Bit-sliced state: plane arrays mirror vals/ghost subtemplate by
    // subtemplate, with scalar staging rows so halo payloads stay
    // byte-identical to the scalar kernel's (layout notes in the k-path
    // engine and docs/ALGORITHM.md section 6).
    std::optional<gf::BitslicedGF> bse;
    std::vector<std::vector<std::uint64_t>> bvals, bgh;
    std::vector<std::uint64_t> blive;
    std::vector<V> stage_out, stage_ghost;
    const std::vector<std::uint32_t>& boundary = view.boundary;
    if constexpr (gf::Bitsliceable<F>) {
      if (bitsliced) {
        bse.emplace(f);
        bvals.resize(subs.size());
        bgh.resize(subs.size());
      }
    }

    auto run_phase_scalar = [&](int round, std::uint64_t phase, V& total) {
      const auto [q0, q1] = sched.phase_range(phase);
      const std::size_t batch = q1 - q0;
      const std::uint64_t adj_bytes =
          view.adj.size() * sizeof(partition::NbrRef) +
          view.adj_offsets.size() * sizeof(std::uint64_t);
      const std::uint64_t working_set =
          adj_bytes + static_cast<std::uint64_t>(subs.size()) * nl *
                          batch * sizeof(V);

      for (std::size_t s = 0; s < subs.size(); ++s) {
        const auto& sub = subs[s];
        auto& out = vals[s];
        out.assign(static_cast<std::size_t>(nl) * batch, f.zero());
        std::uint64_t ops = 0;
        if (sub.child1 < 0) {
          for (std::uint32_t li = 0; li < nl; ++li) {
            const V coeff =
                field_coeff(f, opt.seed, round, view.vertices[li],
                            static_cast<std::uint32_t>(s));
            V* row = out.data() + static_cast<std::size_t>(li) * batch;
            for (std::size_t b = 0; b < batch; ++b) {
              const auto q = static_cast<std::uint32_t>(q0 + b);
              row[b] = inner_product_odd(v[li], q) ? f.zero() : coeff;
            }
          }
          ops = static_cast<std::uint64_t>(nl) * batch;
        } else {
          const auto& own = vals[static_cast<std::size_t>(sub.child1)];
          const auto& oth = vals[static_cast<std::size_t>(sub.child2)];
          const auto& oth_ghost =
              ghost[static_cast<std::size_t>(sub.child2)];
          for (std::uint32_t li = 0; li < nl; ++li) {
            V* row = out.data() + static_cast<std::size_t>(li) * batch;
            const auto begin = view.adj_offsets[li];
            const auto end = view.adj_offsets[li + 1];
            for (auto e = begin; e < end; ++e) {
              const auto ref = view.adj[e];
              const V* src =
                  ref.is_ghost()
                      ? oth_ghost.data() +
                            static_cast<std::size_t>(ref.index()) * batch
                      : oth.data() +
                            static_cast<std::size_t>(ref.index()) * batch;
              for (std::size_t b = 0; b < batch; ++b)
                row[b] = f.add(row[b], src[b]);
            }
            ops += (end - begin) * batch;
            const V* own_row =
                own.data() + static_cast<std::size_t>(li) * batch;
            for (std::size_t b = 0; b < batch; ++b)
              row[b] = f.mul(own_row[b], row[b]);
            ops += batch;
          }
        }
        world.charge_compute(ops);
        world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
        if (needs_exchange[s]) {
          auto& gbuf = ghost[s];
          gbuf.assign(static_cast<std::size_t>(ng) * batch, f.zero());
          detail::halo_exchange(group, view, out, gbuf, batch);
        }
      }
      detail::accumulate_level(
          f, vals[static_cast<std::size_t>(td.root_id())],
          static_cast<std::size_t>(nl) * batch, total);
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
    };

    // The same phase, bit-sliced: leaves broadcast their coefficient into
    // the live lanes of each 64-iteration block, internal subtemplates do
    // a lane-wise multiply of the own chain against the neighbor sum.
    // Charges and halo bytes mirror the scalar kernel exactly.
    auto run_phase_bs = [&](const auto& bs, int round, std::uint64_t phase,
                            V& total) {
      using BS = gf::BitslicedGF;
      using word = BS::word;
      const int L = bs.words();
      const auto [q0, q1] = sched.phase_range(phase);
      const std::size_t batch = q1 - q0;
      const std::size_t nblocks = (batch + BS::kLanes - 1) / BS::kLanes;
      const std::size_t wpv = nblocks * static_cast<std::size_t>(L);
      const std::uint64_t adj_bytes =
          view.adj.size() * sizeof(partition::NbrRef) +
          view.adj_offsets.size() * sizeof(std::uint64_t);
      const std::uint64_t working_set =
          adj_bytes + static_cast<std::uint64_t>(subs.size()) * nl *
                          batch * sizeof(V);
      auto lanes_of = [&](std::size_t blk) {
        return static_cast<int>(
            std::min<std::size_t>(BS::kLanes, batch - blk * BS::kLanes));
      };

      // One parity mask per (vertex, block), shared by every leaf.
      blive.assign(static_cast<std::size_t>(nl) * nblocks, 0);
      for (std::uint32_t li = 0; li < nl; ++li)
        for (std::size_t blk = 0; blk < nblocks; ++blk)
          blive[static_cast<std::size_t>(li) * nblocks + blk] =
              BS::live_mask(v[li], q0 + blk * BS::kLanes, lanes_of(blk));
      stage_out.assign(static_cast<std::size_t>(nl) * batch, f.zero());

      for (std::size_t s = 0; s < subs.size(); ++s) {
        const auto& sub = subs[s];
        auto& out = bvals[s];
        out.assign(static_cast<std::size_t>(nl) * wpv, 0);
        std::uint64_t ops = 0;
        if (sub.child1 < 0) {
          for (std::uint32_t li = 0; li < nl; ++li) {
            const V coeff =
                field_coeff(f, opt.seed, round, view.vertices[li],
                            static_cast<std::uint32_t>(s));
            for (std::size_t blk = 0; blk < nblocks; ++blk)
              bs.broadcast(
                  &out[static_cast<std::size_t>(li) * wpv + blk * L],
                  static_cast<BS::value_type>(coeff),
                  blive[static_cast<std::size_t>(li) * nblocks + blk]);
          }
          ops = static_cast<std::uint64_t>(nl) * batch;
        } else {
          const auto& own = bvals[static_cast<std::size_t>(sub.child1)];
          const auto& oth = bvals[static_cast<std::size_t>(sub.child2)];
          const auto& oth_ghost = bgh[static_cast<std::size_t>(sub.child2)];
          for (std::uint32_t li = 0; li < nl; ++li) {
            const auto begin = view.adj_offsets[li];
            const auto end = view.adj_offsets[li + 1];
            for (std::size_t blk = 0; blk < nblocks; ++blk) {
              word* dst = &out[static_cast<std::size_t>(li) * wpv + blk * L];
              const word* own_blk =
                  &own[static_cast<std::size_t>(li) * wpv + blk * L];
              if (bs.is_zero(own_blk)) continue;  // product stays zero
              word acc[16] = {};
              for (auto e = begin; e < end; ++e) {
                const auto ref = view.adj[e];
                const word* src =
                    ref.is_ghost()
                        ? &oth_ghost[static_cast<std::size_t>(ref.index()) *
                                         wpv +
                                     blk * L]
                        : &oth[static_cast<std::size_t>(ref.index()) * wpv +
                               blk * L];
                bs.add_into(acc, src);
              }
              bs.mul(dst, own_blk, acc);
            }
          }
          // Same logical work as the scalar kernel: one add per adjacency
          // entry per lane plus one multiply per vertex-lane.
          ops = (view.adj.size() + nl) * static_cast<std::uint64_t>(batch);
        }
        world.charge_compute(ops);
        world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
        if (needs_exchange[s]) {
          // Halo in the scalar byte layout: transpose boundary blocks to
          // values, exchange, transpose ghosts back to planes.
          for (std::uint32_t li : boundary)
            for (std::size_t blk = 0; blk < nblocks; ++blk)
              bs.unpack_lanes(
                  stage_out.data() + static_cast<std::size_t>(li) * batch +
                      blk * BS::kLanes,
                  &out[static_cast<std::size_t>(li) * wpv + blk * L],
                  lanes_of(blk));
          stage_ghost.assign(static_cast<std::size_t>(ng) * batch, f.zero());
          detail::halo_exchange(group, view, stage_out, stage_ghost, batch);
          auto& gbuf = bgh[s];
          gbuf.assign(static_cast<std::size_t>(ng) * wpv, 0);
          for (std::uint32_t gi = 0; gi < ng; ++gi)
            for (std::size_t blk = 0; blk < nblocks; ++blk)
              bs.pack_lanes(
                  &gbuf[static_cast<std::size_t>(gi) * wpv + blk * L],
                  stage_ghost.data() + static_cast<std::size_t>(gi) * batch +
                      blk * BS::kLanes,
                  lanes_of(blk));
        }
      }
      const auto& root = bvals[static_cast<std::size_t>(td.root_id())];
      for (std::size_t blk = 0; blk < nblocks; ++blk) {
        word sum[16] = {};
        for (std::uint32_t li = 0; li < nl; ++li)
          bs.add_into(sum,
                      &root[static_cast<std::size_t>(li) * wpv + blk * L]);
        total = f.add(total, static_cast<V>(bs.fold_xor(sum)));
      }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
    };

    auto run_phase = [&](int round, std::uint64_t phase, V& total) {
      MIDAS_TRACE_SPAN(bitsliced ? "engine.phase.bitsliced"
                                 : "engine.phase.scalar",
                       {"phase", static_cast<std::int64_t>(phase)});
      [[maybe_unused]] const double vt0 = world.vclock();
      if constexpr (gf::Bitsliceable<F>) {
        if (bitsliced) {
          run_phase_bs(*bse, round, phase, total);
          MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                              (world.vclock() - vt0) * 1e9);
          return;
        }
      }
      run_phase_scalar(round, phase, total);
      MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                          (world.vclock() - vt0) * 1e9);
    };

    for (int round = start_round; round < opt.rounds(); ++round) {
      MIDAS_TRACE_SPAN("engine.round", {"round", round});
      for (std::uint32_t li = 0; li < nl; ++li)
        v[li] = v_vector(opt.seed, round, view.vertices[li], k);
      V total = f.zero();
      for (std::uint64_t phase = group_color; phase < sched.phases();
           phase += sched.groups())
        run_phase(round, phase, total);
      V buf = total;
      world.allreduce<V>(std::span<V>(&buf, 1),
                         [&f](V& a, const V& b) { a = f.add(a, b); });
      if (world.rank() == 0 && buf != f.zero())
        round_found[static_cast<std::size_t>(round)] = 1;
      world.barrier();
      if (cs.armed() && (round + 1) % opt.checkpoint.every_rounds == 0 &&
          round + 1 < opt.rounds() && !(opt.early_exit && buf != f.zero())) {
        detail::take_snapshot(world, cs, chash, round + 1, 0,
                              opt.checkpoint.rng_state, accum_stage,
                              [&] { return driver_state_upto(round + 1); });
      }
      if (opt.early_exit && buf != f.zero()) break;
    }
  });

  if (!spmd.failed_ranks.empty() && spmd.first_error)
    std::rethrow_exception(spmd.first_error);
  result.wall_s = wall.elapsed_s();
  result.vtime = spmd.makespan;
  result.total_stats = spmd.total;
  result.vclocks = spmd.vclocks;
  result.failed_ranks = spmd.failed_ranks;
  for (int round = 0; round < opt.rounds(); ++round) {
    ++result.rounds_run;
    if (round_found[static_cast<std::size_t>(round)]) {
      result.found = true;
      result.found_round = round;
      break;
    }
  }
  if (!opt.early_exit) result.rounds_run = opt.rounds();
  return result;
}

/// Distributed k-tree detection for a template decomposition.
template <gf::GaloisField F>
MidasResult midas_ktree(const graph::Graph& g,
                        const partition::Partition& part,
                        const TreeDecomposition& td, const MidasOptions& opt,
                        const F& f = F{}) {
  detail::require_options(part.parts == opt.n1,
                          "partition must have N1 parts");
  return midas_ktree_views(partition::build_part_views(g, part), td, opt, f);
}

// ---------------------------------------------------------------------------
// Scan statistics
// ---------------------------------------------------------------------------

struct MidasScanResult {
  FeasibilityTable table;
  double vtime = 0.0;
  double wall_s = 0.0;
  runtime::CommStats total_stats;
  std::vector<double> vclocks;
  int resumed_from_round = -1;  // snapshot round this run resumed at
};

/// Distributed (size, weight) feasibility for connected subgraphs — the
/// parallel form of Algorithm 5. Messages carry the whole weight axis, so a
/// phase ships (W+1) * N2 values per boundary vertex per size step.
template <gf::GaloisField F>
MidasScanResult midas_scan_views(
    const std::vector<partition::PartView>& views,
    const std::vector<std::uint32_t>& weights, const MidasOptions& opt,
    const F& f = F{}) {
  using V = typename F::value_type;
  detail::require_options(static_cast<int>(views.size()) == opt.n1,
                          "views must have N1 parts");
  {
    std::size_t total_local = 0;
    for (const auto& view : views) total_local += view.num_local();
    detail::require_options(weights.size() == total_local,
                            "one weight per vertex required");
  }
  detail::require_options(opt.n1 >= 1 && opt.n1 <= opt.n_ranks &&
                              opt.n_ranks % opt.n1 == 0,
                          "N1 must divide N (phase groups need N/N1 whole "
                          "replicas)");
  const Schedule sched =
      make_schedule(opt.k, opt.epsilon, opt.n_ranks, opt.n1, opt.n2);
  const int k = opt.k;
  const bool bitsliced = detail::par_use_bitsliced(f, opt.kernel);

  std::uint32_t wmax = 0;
  {
    std::vector<std::uint32_t> sorted(weights);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (int i = 0; i < k && i < static_cast<int>(sorted.size()); ++i)
      wmax += sorted[static_cast<std::size_t>(i)];
  }
  const std::uint32_t width = wmax + 1;

  MidasScanResult result;
  result.table.k = k;
  result.table.max_weight = wmax;
  result.table.feasible.assign(static_cast<std::size_t>(k) + 1,
                               std::vector<bool>(width, false));
  Timer wall;
  // Per-round detection table gathered at world rank 0 via allreduce; one
  // slot per (round, j, z). This is exactly the driver state a snapshot
  // persists: one (k+1)*width stride per completed round.
  const std::size_t round_stride =
      static_cast<std::size_t>(k + 1) * width;
  std::vector<std::uint8_t> found_cells(
      static_cast<std::size_t>(opt.rounds()) * round_stride, 0);

  runtime::SpmdOptions sopt = detail::effective_spmd(opt);
  const std::uint64_t chash = detail::config_fingerprint(
      /*engine_tag=*/0x7363616eULL /* "scan" */, opt, sopt, sizeof(V), views,
      runtime::fnv1a(std::as_bytes(std::span<const std::uint32_t>(weights))));
  detail::CheckpointSession cs = detail::open_checkpoints(
      opt, sopt, chash, /*driver_bytes_per_round=*/round_stride,
      /*wave_accum_bytes=*/0);  // round-boundary snapshots only
  const int start_round = cs.resumed ? static_cast<int>(cs.loaded.next_round)
                                     : 0;
  if (cs.resumed) {
    result.resumed_from_round = start_round;
    std::copy(cs.loaded.driver_state.begin(), cs.loaded.driver_state.end(),
              found_cells.begin());
  }
  std::vector<std::vector<std::uint8_t>> accum_stage(
      static_cast<std::size_t>(opt.n_ranks));
  auto driver_state_upto = [&found_cells, round_stride](int rounds_done) {
    return std::vector<std::uint8_t>(
        found_cells.begin(),
        found_cells.begin() +
            static_cast<std::ptrdiff_t>(
                static_cast<std::size_t>(rounds_done) * round_stride));
  };

  runtime::SpmdResult spmd = runtime::run_spmd(
      opt.n_ranks, opt.model, sopt,
      [&](runtime::Comm& world) {
        const int group_color = world.rank() / opt.n1;
        runtime::Comm group =
            world.split(group_color, world.rank() % opt.n1);
        world.resume_sync();
        const auto& view = views[static_cast<std::size_t>(group.rank())];
        const std::uint32_t nl = view.num_local();
        const std::uint32_t ng = view.num_ghosts();

        std::vector<std::uint32_t> v(nl);
        // vals[j][(li * width + z) * batch + b] — vertex-major so that one
        // vertex's whole (weight x batch) block is a contiguous message
        // payload; ghost mirrors the layout with ghost indices.
        std::vector<std::vector<V>> vals(static_cast<std::size_t>(k) + 1);
        std::vector<std::vector<V>> ghost(static_cast<std::size_t>(k) + 1);
        // accum[j][z]: XOR over phases/iterations of sum_i P(i,q,j,z).
        std::vector<V> accum(static_cast<std::size_t>(k + 1) * width);
        std::vector<V> scratch;

        // Bit-sliced state: per-layer plane arrays with the same
        // (vertex, weight) nesting, plus scalar staging so halo payloads
        // stay byte-identical to the scalar kernel's.
        std::optional<gf::BitslicedGF> bse;
        std::vector<std::vector<std::uint64_t>> bvals(
            static_cast<std::size_t>(k) + 1);
        std::vector<std::vector<std::uint64_t>> bghost(
            static_cast<std::size_t>(k) + 1);
        std::vector<std::uint64_t> blive;
        std::vector<V> stage_out, stage_ghost;
        const std::vector<std::uint32_t>& boundary = view.boundary;
        if constexpr (gf::Bitsliceable<F>) {
          if (bitsliced) bse.emplace(f);
        }

        auto run_phase_scalar = [&](int round, std::uint64_t phase) {
          const auto [q0, q1] = sched.phase_range(phase);
          const std::size_t batch = q1 - q0;
          for (int j = 1; j <= k; ++j) {
            vals[static_cast<std::size_t>(j)].assign(
                static_cast<std::size_t>(width) * nl * batch, f.zero());
            ghost[static_cast<std::size_t>(j)].assign(
                static_cast<std::size_t>(width) * ng * batch, f.zero());
          }
          scratch.assign(batch, f.zero());
          const std::uint64_t adj_bytes =
              view.adj.size() * sizeof(partition::NbrRef) +
              view.adj_offsets.size() * sizeof(std::uint64_t);
          const std::uint64_t working_set =
              adj_bytes + static_cast<std::uint64_t>(k) * (nl + ng) *
                              width * batch * sizeof(V);

          // Base case.
          auto& base = vals[1];
          for (std::uint32_t li = 0; li < nl; ++li) {
            const graph::VertexId gid = view.vertices[li];
            const V coeff = field_coeff(f, opt.seed, round, gid, 1);
            V* row = base.data() +
                     (static_cast<std::size_t>(li) * width +
                      weights[gid]) *
                         batch;
            for (std::size_t b = 0; b < batch; ++b) {
              const auto q = static_cast<std::uint32_t>(q0 + b);
              row[b] = inner_product_odd(v[li], q) ? f.zero() : coeff;
            }
          }
          world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
          detail::halo_exchange(group, view, vals[1], ghost[1],
                                batch * width);

          for (int j = 2; j <= k; ++j) {
            auto& out = vals[static_cast<std::size_t>(j)];
            std::uint64_t ops = 0;
            for (std::uint32_t li = 0; li < nl; ++li) {
              const graph::VertexId gid = view.vertices[li];
              const auto begin = view.adj_offsets[li];
              const auto end = view.adj_offsets[li + 1];
              for (auto e = begin; e < end; ++e) {
                const auto ref = view.adj[e];
                const bool is_ghost = ref.is_ghost();
                const std::uint32_t idx = ref.index();
                const graph::VertexId u_gid =
                    is_ghost ? view.ghosts[idx] : view.vertices[idx];
                const V sig =
                    sigma_coeff(f, opt.seed, round, gid, u_gid,
                                static_cast<std::uint32_t>(j));
                for (int j1 = 1; j1 <= j - 1; ++j1) {
                  const auto& own = vals[static_cast<std::size_t>(j1)];
                  const auto& oth_local =
                      vals[static_cast<std::size_t>(j - j1)];
                  const auto& oth_ghost =
                      ghost[static_cast<std::size_t>(j - j1)];
                  const V* oth_vertex =
                      (is_ghost ? oth_ghost.data() : oth_local.data()) +
                      static_cast<std::size_t>(idx) * width * batch;
                  const V* own_vertex =
                      own.data() +
                      static_cast<std::size_t>(li) * width * batch;
                  V* out_vertex =
                      out.data() +
                      static_cast<std::size_t>(li) * width * batch;
                  for (std::uint32_t z = 0; z < width; ++z) {
                    V* row = out_vertex + static_cast<std::size_t>(z) * batch;
                    // Convolve into a scratch row, then fold it in with a
                    // single row-wide scale by sig (one log lookup).
                    std::fill(scratch.begin(), scratch.end(), f.zero());
                    for (std::uint32_t z1 = 0; z1 <= z; ++z1) {
                      const V* a =
                          own_vertex + static_cast<std::size_t>(z1) * batch;
                      const V* bvals =
                          oth_vertex +
                          static_cast<std::size_t>(z - z1) * batch;
                      gf::mul_add_rows(f, scratch.data(), a, bvals, batch);
                    }
                    gf::scale_add_row(f, row, sig, scratch.data(), batch);
                    ops += static_cast<std::uint64_t>(z + 1) * batch;
                  }
                }
              }
            }
            world.charge_compute(ops);
            world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
            if (j < k)
              detail::halo_exchange(group, view,
                                    vals[static_cast<std::size_t>(j)],
                                    ghost[static_cast<std::size_t>(j)],
                                    batch * width);
          }
          // Accumulate per-(j,z) sums. As in the sequential detector,
          // size-j sums only fold iterations q < 2^j (degree-j detection
          // lives in the 2^j-element subgroup; folding all 2^k iterations
          // would cancel every size < k).
          for (int j = 1; j <= k; ++j) {
            const std::uint64_t jlimit = std::uint64_t{1} << j;
            if (q0 >= jlimit) continue;
            const std::size_t bmax =
                std::min<std::uint64_t>(batch, jlimit - q0);
            const auto& layer = vals[static_cast<std::size_t>(j)];
            V* acc_row = accum.data() + static_cast<std::size_t>(j) * width;
            for (std::uint32_t li = 0; li < nl; ++li) {
              const V* vertex_block =
                  layer.data() + static_cast<std::size_t>(li) * width * batch;
              for (std::uint32_t z = 0; z < width; ++z) {
                const V* row =
                    vertex_block + static_cast<std::size_t>(z) * batch;
                for (std::size_t b = 0; b < bmax; ++b)
                  acc_row[z] = f.add(acc_row[z], row[b]);
              }
            }
          }
          world.charge_compute(static_cast<std::uint64_t>(nl) * batch * k);
        };

        // The same phase, bit-sliced. For each (vertex, edge, weight z) the
        // weight convolution accumulates lane-wise products into one block,
        // then one sigma matrix apply folds it into the output — value-
        // identical to the scalar kernel by distributivity. Charges and
        // halo bytes mirror the scalar kernel exactly.
        auto run_phase_bs = [&](const auto& bs, int round,
                                std::uint64_t phase) {
          using BS = gf::BitslicedGF;
          using word = BS::word;
          const int L = bs.words();
          const auto [q0, q1] = sched.phase_range(phase);
          const std::size_t batch = q1 - q0;
          const std::size_t nblocks = (batch + BS::kLanes - 1) / BS::kLanes;
          const std::size_t wpv = nblocks * static_cast<std::size_t>(L);
          const std::size_t wrow = static_cast<std::size_t>(width) * wpv;
          for (int j = 1; j <= k; ++j) {
            bvals[static_cast<std::size_t>(j)].assign(
                static_cast<std::size_t>(nl) * wrow, 0);
            bghost[static_cast<std::size_t>(j)].assign(
                static_cast<std::size_t>(ng) * wrow, 0);
          }
          stage_out.assign(static_cast<std::size_t>(width) * nl * batch,
                           f.zero());
          const std::uint64_t adj_bytes =
              view.adj.size() * sizeof(partition::NbrRef) +
              view.adj_offsets.size() * sizeof(std::uint64_t);
          const std::uint64_t working_set =
              adj_bytes + static_cast<std::uint64_t>(k) * (nl + ng) *
                              width * batch * sizeof(V);
          auto lanes_of = [&](std::size_t blk) {
            return static_cast<int>(
                std::min<std::size_t>(BS::kLanes, batch - blk * BS::kLanes));
          };
          // Halo in the scalar byte layout: each boundary vertex ships its
          // whole (weight x batch) block, transposed to values on send and
          // back to planes on receive.
          auto exchange_layer = [&](int j) {
            const auto& src = bvals[static_cast<std::size_t>(j)];
            for (std::uint32_t li : boundary)
              for (std::uint32_t z = 0; z < width; ++z)
                for (std::size_t blk = 0; blk < nblocks; ++blk)
                  bs.unpack_lanes(
                      stage_out.data() +
                          (static_cast<std::size_t>(li) * width + z) * batch +
                          blk * BS::kLanes,
                      &src[static_cast<std::size_t>(li) * wrow + z * wpv +
                           blk * L],
                      lanes_of(blk));
            stage_ghost.assign(static_cast<std::size_t>(width) * ng * batch,
                               f.zero());
            detail::halo_exchange(group, view, stage_out, stage_ghost,
                                  batch * width);
            auto& gbuf = bghost[static_cast<std::size_t>(j)];
            for (std::uint32_t gi = 0; gi < ng; ++gi)
              for (std::uint32_t z = 0; z < width; ++z)
                for (std::size_t blk = 0; blk < nblocks; ++blk)
                  bs.pack_lanes(
                      &gbuf[static_cast<std::size_t>(gi) * wrow + z * wpv +
                            blk * L],
                      stage_ghost.data() +
                          (static_cast<std::size_t>(gi) * width + z) * batch +
                          blk * BS::kLanes,
                      lanes_of(blk));
          };

          // Base case: liveness parity masks, coefficient broadcast at the
          // vertex's own weight.
          blive.assign(static_cast<std::size_t>(nl) * nblocks, 0);
          auto& base = bvals[1];
          for (std::uint32_t li = 0; li < nl; ++li) {
            const graph::VertexId gid = view.vertices[li];
            const V coeff = field_coeff(f, opt.seed, round, gid, 1);
            for (std::size_t blk = 0; blk < nblocks; ++blk) {
              const word m =
                  BS::live_mask(v[li], q0 + blk * BS::kLanes, lanes_of(blk));
              blive[static_cast<std::size_t>(li) * nblocks + blk] = m;
              bs.broadcast(&base[static_cast<std::size_t>(li) * wrow +
                                 weights[gid] * wpv + blk * L],
                           static_cast<BS::value_type>(coeff), m);
            }
          }
          world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
          exchange_layer(1);

          for (int j = 2; j <= k; ++j) {
            auto& out = bvals[static_cast<std::size_t>(j)];
            for (std::uint32_t li = 0; li < nl; ++li) {
              const graph::VertexId gid = view.vertices[li];
              const auto begin = view.adj_offsets[li];
              const auto end = view.adj_offsets[li + 1];
              for (auto e = begin; e < end; ++e) {
                const auto ref = view.adj[e];
                const bool is_ghost = ref.is_ghost();
                const std::uint32_t idx = ref.index();
                const graph::VertexId u_gid =
                    is_ghost ? view.ghosts[idx] : view.vertices[idx];
                const BS::Matrix sig = bs.matrix(
                    static_cast<BS::value_type>(sigma_coeff(
                        f, opt.seed, round, gid, u_gid,
                        static_cast<std::uint32_t>(j))));
                for (std::uint32_t z = 0; z < width; ++z)
                  for (std::size_t blk = 0; blk < nblocks; ++blk) {
                    word acc[16] = {};
                    word prod[16];
                    bool any = false;
                    for (int j1 = 1; j1 <= j - 1; ++j1) {
                      const auto& own = bvals[static_cast<std::size_t>(j1)];
                      const auto& oth =
                          is_ghost
                              ? bghost[static_cast<std::size_t>(j - j1)]
                              : bvals[static_cast<std::size_t>(j - j1)];
                      const word* own_v =
                          own.data() + static_cast<std::size_t>(li) * wrow;
                      const word* oth_v =
                          oth.data() + static_cast<std::size_t>(idx) * wrow;
                      for (std::uint32_t z1 = 0; z1 <= z; ++z1) {
                        const word* a = own_v + z1 * wpv + blk * L;
                        if (bs.is_zero(a)) continue;
                        const word* bb = oth_v + (z - z1) * wpv + blk * L;
                        if (bs.is_zero(bb)) continue;
                        bs.mul(prod, a, bb);
                        bs.add_into(acc, prod);
                        any = true;
                      }
                    }
                    if (!any) continue;
                    word scaled[16];
                    bs.mul_matrix(scaled, sig, acc);
                    bs.add_into(&out[static_cast<std::size_t>(li) * wrow +
                                     z * wpv + blk * L],
                                scaled);
                  }
              }
            }
            // Same logical work as the scalar kernel's (edge, j1, z, z1)
            // sweep, in closed form.
            const std::uint64_t ops =
                view.adj.size() * static_cast<std::uint64_t>(j - 1) *
                (static_cast<std::uint64_t>(width) * (width + 1) / 2) *
                batch;
            world.charge_compute(ops);
            world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
            if (j < k) exchange_layer(j);
          }
          // Accumulate per-(j,z) sums with the same q < 2^j lane cutoff.
          for (int j = 1; j <= k; ++j) {
            const std::uint64_t jlimit = std::uint64_t{1} << j;
            if (q0 >= jlimit) continue;
            const std::size_t bmax =
                std::min<std::uint64_t>(batch, jlimit - q0);
            const auto& layer = bvals[static_cast<std::size_t>(j)];
            V* acc_row = accum.data() + static_cast<std::size_t>(j) * width;
            for (std::uint32_t z = 0; z < width; ++z)
              for (std::size_t blk = 0; blk < nblocks; ++blk) {
                if (blk * BS::kLanes >= bmax) break;
                const std::size_t lv =
                    std::min<std::size_t>(BS::kLanes, bmax - blk * BS::kLanes);
                const word m = lv >= BS::kLanes
                                   ? ~word{0}
                                   : (word{1} << lv) - 1;
                word sum[16] = {};
                for (std::uint32_t li = 0; li < nl; ++li)
                  bs.add_into(sum, &layer[static_cast<std::size_t>(li) * wrow +
                                          z * wpv + blk * L]);
                acc_row[z] =
                    f.add(acc_row[z], static_cast<V>(bs.fold_xor(sum, m)));
              }
          }
          world.charge_compute(static_cast<std::uint64_t>(nl) * batch * k);
        };

        auto run_phase = [&](int round, std::uint64_t phase) {
          MIDAS_TRACE_SPAN(bitsliced ? "engine.phase.bitsliced"
                                     : "engine.phase.scalar",
                           {"phase", static_cast<std::int64_t>(phase)});
          [[maybe_unused]] const double vt0 = world.vclock();
          if constexpr (gf::Bitsliceable<F>) {
            if (bitsliced) {
              run_phase_bs(*bse, round, phase);
              MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                                  (world.vclock() - vt0) * 1e9);
              return;
            }
          }
          run_phase_scalar(round, phase);
          MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                              (world.vclock() - vt0) * 1e9);
        };

        for (int round = start_round; round < opt.rounds(); ++round) {
          MIDAS_TRACE_SPAN("engine.round", {"round", round});
          for (std::uint32_t li = 0; li < nl; ++li)
            v[li] = v_vector(opt.seed, round, view.vertices[li], k);
          std::fill(accum.begin(), accum.end(), f.zero());

          for (std::uint64_t phase = group_color; phase < sched.phases();
               phase += sched.groups())
            run_phase(round, phase);
          // Combine the accumulator across all ranks.
          std::vector<V> buf(accum);
          world.allreduce<V>(std::span<V>(buf),
                             [&f](V& a, const V& b) { a = f.add(a, b); });
          if (world.rank() == 0) {
            for (int j = 1; j <= k; ++j)
              for (std::uint32_t z = 0; z < width; ++z)
                if (buf[static_cast<std::size_t>(j) * width + z] != f.zero())
                  found_cells[(static_cast<std::size_t>(round) * (k + 1) +
                               static_cast<std::size_t>(j)) *
                                  width +
                              z] = 1;
          }
          world.barrier();
          if (cs.armed() &&
              (round + 1) % opt.checkpoint.every_rounds == 0 &&
              round + 1 < opt.rounds()) {
            detail::take_snapshot(
                world, cs, chash, round + 1, 0, opt.checkpoint.rng_state,
                accum_stage, [&] { return driver_state_upto(round + 1); });
          }
        }
      });

  if (!spmd.failed_ranks.empty() && spmd.first_error)
    std::rethrow_exception(spmd.first_error);
  result.wall_s = wall.elapsed_s();
  result.vtime = spmd.makespan;
  result.total_stats = spmd.total;
  result.vclocks = spmd.vclocks;
  for (int round = 0; round < opt.rounds(); ++round)
    for (int j = 1; j <= k; ++j)
      for (std::uint32_t z = 0; z < width; ++z)
        if (found_cells[(static_cast<std::size_t>(round) * (k + 1) +
                         static_cast<std::size_t>(j)) *
                            width +
                        z])
          result.table.feasible[static_cast<std::size_t>(j)][z] = true;
  return result;
}

/// Distributed scan feasibility over a (graph, partition) pair; builds the
/// part views and delegates to midas_scan_views.
template <gf::GaloisField F>
MidasScanResult midas_scan(const graph::Graph& g,
                           const partition::Partition& part,
                           const std::vector<std::uint32_t>& weights,
                           const MidasOptions& opt, const F& f = F{}) {
  detail::require_options(part.parts == opt.n1,
                          "partition must have N1 parts");
  detail::require_options(weights.size() == g.num_vertices(),
                          "one weight per vertex required");
  return midas_scan_views(partition::build_part_views(g, part), weights, opt,
                          f);
}

// ---------------------------------------------------------------------------
// Constrained (Graph Motif) detection, distributed
// ---------------------------------------------------------------------------

/// Distributed Graph Motif detection over pre-built part views: the
/// constrained sieve of core/motif.hpp on a scan-style layered DP (no
/// weight axis), with the k-tree driver's round/checkpoint/allreduce shape.
/// `colors` is indexed by *global* vertex id; `opt.k` must equal
/// `motif.size()`. Halo payloads travel in the scalar byte layout under
/// both kernels, so checkpoints and the watchdog stay kernel-independent;
/// answers are bit-identical to detect_motif_seq for the same seed.
template <gf::GaloisField F>
MidasResult midas_motif_views(const std::vector<partition::PartView>& views,
                              const std::vector<std::uint32_t>& colors,
                              const std::vector<std::uint32_t>& motif,
                              const MidasOptions& opt, const F& f = F{}) {
  using V = typename F::value_type;
  detail::require_options(static_cast<int>(views.size()) == opt.n1,
                          "views must have N1 parts");
  {
    std::size_t total_local = 0;
    for (const auto& view : views) total_local += view.num_local();
    detail::require_options(colors.size() == total_local,
                            "one color per vertex required");
  }
  detail::require_options(
      opt.k == static_cast<int>(motif.size()),
      "opt.k must equal the motif size (one shade per motif slot)");
  detail::require_options(opt.n1 >= 1 && opt.n1 <= opt.n_ranks &&
                              opt.n_ranks % opt.n1 == 0,
                          "N1 must divide N (phase groups need N/N1 whole "
                          "replicas)");
  const ShadePlan plan = make_shade_plan(colors, motif);
  const int k = plan.k;
  const Schedule sched =
      make_schedule(k, opt.epsilon, opt.n_ranks, opt.n1, opt.n2);
  const bool bitsliced = detail::par_use_bitsliced(f, opt.kernel);

  MidasResult result;
  Timer wall;
  std::vector<int> round_found(static_cast<std::size_t>(opt.rounds()), 0);
  // No failover here (only the k-path engine masks failures), but faults
  // still terminate with typed errors instead of hangs.
  runtime::SpmdOptions sopt = detail::effective_spmd(opt);

  // The colors and the motif multiset feed the config fingerprint: a
  // snapshot must not resume against a differently-colored input.
  std::uint64_t cm_hash = 0;
  {
    std::vector<std::uint64_t> cw;
    cw.reserve(colors.size() + motif.size() + 1);
    cw.push_back(static_cast<std::uint64_t>(colors.size()));
    for (const auto c : colors) cw.push_back(c);
    for (const auto c : motif) cw.push_back(c);
    cm_hash =
        runtime::fnv1a(std::as_bytes(std::span<const std::uint64_t>(cw)));
  }
  const std::uint64_t chash = detail::config_fingerprint(
      /*engine_tag=*/0x6d6f746966ULL /* "motif" */, opt, sopt, sizeof(V),
      views, cm_hash);
  detail::CheckpointSession cs = detail::open_checkpoints(
      opt, sopt, chash, /*driver_bytes_per_round=*/1,
      /*wave_accum_bytes=*/0);  // round-boundary snapshots only
  const int start_round = cs.resumed ? static_cast<int>(cs.loaded.next_round)
                                     : 0;
  if (cs.resumed) {
    result.resumed_from_round = start_round;
    for (int r = 0; r < start_round; ++r)
      round_found[static_cast<std::size_t>(r)] =
          cs.loaded.driver_state[static_cast<std::size_t>(r)];
  }
  std::vector<std::vector<std::uint8_t>> accum_stage(
      static_cast<std::size_t>(opt.n_ranks));
  auto driver_state_upto = [&round_found](int rounds_done) {
    std::vector<std::uint8_t> s(static_cast<std::size_t>(rounds_done));
    for (int r = 0; r < rounds_done; ++r)
      s[static_cast<std::size_t>(r)] =
          static_cast<std::uint8_t>(round_found[static_cast<std::size_t>(r)]);
    return s;
  };

  auto spmd = runtime::run_spmd(opt.n_ranks, opt.model, sopt,
                                [&](runtime::Comm& world) {
    const int group_color = world.rank() / opt.n1;
    runtime::Comm group = world.split(group_color, world.rank() % opt.n1);
    world.resume_sync();
    const auto& view = views[static_cast<std::size_t>(group.rank())];
    const std::uint32_t nl = view.num_local();
    const std::uint32_t ng = view.num_ghosts();

    // us[li * k + s] = u_{gid(li),s}, refreshed per round; ghost leaf
    // values arrive through the halo, never by recomputation.
    std::vector<V> us(static_cast<std::size_t>(nl) * k);
    std::vector<std::vector<V>> vals(static_cast<std::size_t>(k) + 1);
    std::vector<std::vector<V>> ghost(static_cast<std::size_t>(k) + 1);
    std::vector<V> scratch;

    // Bit-sliced state: per-layer plane arrays plus scalar staging rows so
    // halo payloads stay byte-identical to the scalar kernel's.
    std::optional<gf::BitslicedGF> bse;
    std::vector<gf::BitslicedGF::value_type> us16;
    std::vector<std::vector<std::uint64_t>> bvals(
        static_cast<std::size_t>(k) + 1);
    std::vector<std::vector<std::uint64_t>> bghost(
        static_cast<std::size_t>(k) + 1);
    std::vector<V> stage_out, stage_ghost;
    const std::vector<std::uint32_t>& boundary = view.boundary;
    if constexpr (gf::Bitsliceable<F>) {
      if (bitsliced) {
        bse.emplace(f);
        us16.resize(static_cast<std::size_t>(nl) * k);
      }
    }

    auto run_phase_scalar = [&](int round, std::uint64_t phase, V& total) {
      const auto [q0, q1] = sched.phase_range(phase);
      const std::size_t batch = q1 - q0;
      for (int j = 1; j <= k; ++j) {
        vals[static_cast<std::size_t>(j)].assign(
            static_cast<std::size_t>(nl) * batch, f.zero());
        ghost[static_cast<std::size_t>(j)].assign(
            static_cast<std::size_t>(ng) * batch, f.zero());
      }
      scratch.assign(batch, f.zero());
      const std::uint64_t adj_bytes =
          view.adj.size() * sizeof(partition::NbrRef) +
          view.adj_offsets.size() * sizeof(std::uint64_t);
      const std::uint64_t working_set =
          adj_bytes + static_cast<std::uint64_t>(k) * (nl + ng) * batch *
                          sizeof(V);

      // Base case: the shade-subset leaf values d_i(t).
      auto& base = vals[1];
      for (std::uint32_t li = 0; li < nl; ++li) {
        const graph::VertexId gid = view.vertices[li];
        const std::uint32_t mask = plan.vertex_mask[gid];
        V* row = base.data() + static_cast<std::size_t>(li) * batch;
        const V* urow = us.data() + static_cast<std::size_t>(li) * k;
        for (std::size_t b = 0; b < batch; ++b)
          row[b] = detail_motif::shade_value(
              f, urow, mask, static_cast<std::uint32_t>(q0 + b));
      }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
      detail::halo_exchange(group, view, vals[1], ghost[1], batch);

      for (int j = 2; j <= k; ++j) {
        auto& out = vals[static_cast<std::size_t>(j)];
        std::uint64_t ops = 0;
        for (std::uint32_t li = 0; li < nl; ++li) {
          const graph::VertexId gid = view.vertices[li];
          V* row = out.data() + static_cast<std::size_t>(li) * batch;
          const auto begin = view.adj_offsets[li];
          const auto end = view.adj_offsets[li + 1];
          for (auto e = begin; e < end; ++e) {
            const auto ref = view.adj[e];
            const bool is_ghost = ref.is_ghost();
            const std::uint32_t idx = ref.index();
            const graph::VertexId u_gid =
                is_ghost ? view.ghosts[idx] : view.vertices[idx];
            const V sig = sigma_coeff(f, opt.seed, round, gid, u_gid,
                                      static_cast<std::uint32_t>(j));
            // Convolve into a scratch row, then fold it in with a single
            // row-wide scale by sig (one log lookup).
            std::fill(scratch.begin(), scratch.end(), f.zero());
            for (int j1 = 1; j1 <= j - 1; ++j1) {
              const V* a = vals[static_cast<std::size_t>(j1)].data() +
                           static_cast<std::size_t>(li) * batch;
              const V* b = (is_ghost
                                ? ghost[static_cast<std::size_t>(j - j1)]
                                : vals[static_cast<std::size_t>(j - j1)])
                               .data() +
                           static_cast<std::size_t>(idx) * batch;
              gf::mul_add_rows(f, scratch.data(), a, b, batch);
            }
            gf::scale_add_row(f, row, sig, scratch.data(), batch);
            ops += static_cast<std::uint64_t>(j) * batch;
          }
        }
        world.charge_compute(ops);
        world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
        if (j < k)
          detail::halo_exchange(group, view,
                                vals[static_cast<std::size_t>(j)],
                                ghost[static_cast<std::size_t>(j)], batch);
      }
      detail::accumulate_level(f, vals[static_cast<std::size_t>(k)],
                               static_cast<std::size_t>(nl) * batch, total);
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
    };

    // The same phase, bit-sliced: leaf blocks come from the shade-plane
    // construction (aligned fast path, per-lane fallback at unaligned
    // phase bases), internal layers are the lane-wise convolution with one
    // sigma matrix apply per (edge, block). Charges and halo bytes mirror
    // the scalar kernel exactly.
    auto run_phase_bs = [&](const auto& bs, int round, std::uint64_t phase,
                            V& total) {
      using BS = gf::BitslicedGF;
      using word = BS::word;
      const int L = bs.words();
      const auto [q0, q1] = sched.phase_range(phase);
      const std::size_t batch = q1 - q0;
      const std::size_t nblocks = (batch + BS::kLanes - 1) / BS::kLanes;
      const std::size_t wpv = nblocks * static_cast<std::size_t>(L);
      const std::uint64_t adj_bytes =
          view.adj.size() * sizeof(partition::NbrRef) +
          view.adj_offsets.size() * sizeof(std::uint64_t);
      const std::uint64_t working_set =
          adj_bytes + static_cast<std::uint64_t>(k) * (nl + ng) * batch *
                          sizeof(V);
      auto lanes_of = [&](std::size_t blk) {
        return static_cast<int>(
            std::min<std::size_t>(BS::kLanes, batch - blk * BS::kLanes));
      };
      for (int j = 1; j <= k; ++j) {
        bvals[static_cast<std::size_t>(j)].assign(
            static_cast<std::size_t>(nl) * wpv, 0);
        bghost[static_cast<std::size_t>(j)].assign(
            static_cast<std::size_t>(ng) * wpv, 0);
      }
      stage_out.assign(static_cast<std::size_t>(nl) * batch, f.zero());
      // Halo in the scalar byte layout: transpose boundary blocks to
      // values, exchange, transpose ghosts back to planes.
      auto exchange_layer = [&](int j) {
        const auto& src = bvals[static_cast<std::size_t>(j)];
        for (std::uint32_t li : boundary)
          for (std::size_t blk = 0; blk < nblocks; ++blk)
            bs.unpack_lanes(
                stage_out.data() + static_cast<std::size_t>(li) * batch +
                    blk * BS::kLanes,
                &src[static_cast<std::size_t>(li) * wpv + blk * L],
                lanes_of(blk));
        stage_ghost.assign(static_cast<std::size_t>(ng) * batch, f.zero());
        detail::halo_exchange(group, view, stage_out, stage_ghost, batch);
        auto& gbuf = bghost[static_cast<std::size_t>(j)];
        for (std::uint32_t gi = 0; gi < ng; ++gi)
          for (std::size_t blk = 0; blk < nblocks; ++blk)
            bs.pack_lanes(
                &gbuf[static_cast<std::size_t>(gi) * wpv + blk * L],
                stage_ghost.data() + static_cast<std::size_t>(gi) * batch +
                    blk * BS::kLanes,
                lanes_of(blk));
      };

      auto& base = bvals[1];
      for (std::uint32_t li = 0; li < nl; ++li) {
        const graph::VertexId gid = view.vertices[li];
        const std::uint32_t mask = plan.vertex_mask[gid];
        for (std::size_t blk = 0; blk < nblocks; ++blk)
          detail_motif::shade_block(
              bs, &base[static_cast<std::size_t>(li) * wpv + blk * L],
              us16.data() + static_cast<std::size_t>(li) * k, mask, k,
              q0 + blk * BS::kLanes, lanes_of(blk));
      }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
      exchange_layer(1);

      for (int j = 2; j <= k; ++j) {
        auto& out = bvals[static_cast<std::size_t>(j)];
        for (std::uint32_t li = 0; li < nl; ++li) {
          const graph::VertexId gid = view.vertices[li];
          const auto begin = view.adj_offsets[li];
          const auto end = view.adj_offsets[li + 1];
          for (auto e = begin; e < end; ++e) {
            const auto ref = view.adj[e];
            const bool is_ghost = ref.is_ghost();
            const std::uint32_t idx = ref.index();
            const graph::VertexId u_gid =
                is_ghost ? view.ghosts[idx] : view.vertices[idx];
            const BS::Matrix sig = bs.matrix(
                static_cast<BS::value_type>(sigma_coeff(
                    f, opt.seed, round, gid, u_gid,
                    static_cast<std::uint32_t>(j))));
            for (std::size_t blk = 0; blk < nblocks; ++blk) {
              word acc[16] = {};
              word prod[16];
              bool any = false;
              for (int j1 = 1; j1 <= j - 1; ++j1) {
                const word* a =
                    &bvals[static_cast<std::size_t>(j1)]
                          [static_cast<std::size_t>(li) * wpv + blk * L];
                if (bs.is_zero(a)) continue;
                const auto& oth =
                    is_ghost ? bghost[static_cast<std::size_t>(j - j1)]
                             : bvals[static_cast<std::size_t>(j - j1)];
                const word* b =
                    &oth[static_cast<std::size_t>(idx) * wpv + blk * L];
                if (bs.is_zero(b)) continue;
                bs.mul(prod, a, b);
                bs.add_into(acc, prod);
                any = true;
              }
              if (!any) continue;
              word scaled[16];
              bs.mul_matrix(scaled, sig, acc);
              bs.add_into(
                  &out[static_cast<std::size_t>(li) * wpv + blk * L],
                  scaled);
            }
          }
        }
        // Same logical work as the scalar kernel's (edge, j1) row sweep,
        // in closed form.
        const std::uint64_t ops =
            view.adj.size() * static_cast<std::uint64_t>(j) * batch;
        world.charge_compute(ops);
        world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
        if (j < k) exchange_layer(j);
      }
      const auto& top = bvals[static_cast<std::size_t>(k)];
      for (std::size_t blk = 0; blk < nblocks; ++blk) {
        word sum[16] = {};
        for (std::uint32_t li = 0; li < nl; ++li)
          bs.add_into(sum,
                      &top[static_cast<std::size_t>(li) * wpv + blk * L]);
        total = f.add(total, static_cast<V>(bs.fold_xor(sum)));
      }
      world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
    };

    auto run_phase = [&](int round, std::uint64_t phase, V& total) {
      MIDAS_TRACE_SPAN(bitsliced ? "engine.phase.bitsliced"
                                 : "engine.phase.scalar",
                       {"phase", static_cast<std::int64_t>(phase)});
      [[maybe_unused]] const double vt0 = world.vclock();
      if constexpr (gf::Bitsliceable<F>) {
        if (bitsliced) {
          run_phase_bs(*bse, round, phase, total);
          MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                              (world.vclock() - vt0) * 1e9);
          return;
        }
      }
      run_phase_scalar(round, phase, total);
      MIDAS_TRACE_OBSERVE("engine.phase_vtime_ns",
                          (world.vclock() - vt0) * 1e9);
    };

    for (int round = start_round; round < opt.rounds(); ++round) {
      MIDAS_TRACE_SPAN("engine.round", {"round", round});
      for (std::uint32_t li = 0; li < nl; ++li) {
        const graph::VertexId gid = view.vertices[li];
        const std::uint32_t mask = plan.vertex_mask[gid];
        for (int s = 0; s < k; ++s)
          if (((mask >> s) & 1u) != 0) {
            const V u = shade_coeff(f, opt.seed, round, gid,
                                    static_cast<std::uint32_t>(s));
            us[static_cast<std::size_t>(li) * k + s] = u;
            if (!us16.empty())
              us16[static_cast<std::size_t>(li) * k + s] =
                  static_cast<gf::BitslicedGF::value_type>(u);
          }
      }
      V total = f.zero();
      for (std::uint64_t phase = group_color; phase < sched.phases();
           phase += sched.groups())
        run_phase(round, phase, total);
      V buf = total;
      world.allreduce<V>(std::span<V>(&buf, 1),
                         [&f](V& a, const V& b) { a = f.add(a, b); });
      if (world.rank() == 0 && buf != f.zero())
        round_found[static_cast<std::size_t>(round)] = 1;
      world.barrier();
      if (cs.armed() && (round + 1) % opt.checkpoint.every_rounds == 0 &&
          round + 1 < opt.rounds() && !(opt.early_exit && buf != f.zero())) {
        detail::take_snapshot(world, cs, chash, round + 1, 0,
                              opt.checkpoint.rng_state, accum_stage,
                              [&] { return driver_state_upto(round + 1); });
      }
      if (opt.early_exit && buf != f.zero()) break;
    }
  });

  if (!spmd.failed_ranks.empty() && spmd.first_error)
    std::rethrow_exception(spmd.first_error);
  result.wall_s = wall.elapsed_s();
  result.vtime = spmd.makespan;
  result.total_stats = spmd.total;
  result.vclocks = spmd.vclocks;
  result.failed_ranks = spmd.failed_ranks;
  for (int round = 0; round < opt.rounds(); ++round) {
    ++result.rounds_run;
    if (round_found[static_cast<std::size_t>(round)]) {
      result.found = true;
      result.found_round = round;
      break;
    }
  }
  if (!opt.early_exit) result.rounds_run = opt.rounds();
  return result;
}

/// Distributed Graph Motif detection for a (graph, partition) pair; builds
/// the part views and delegates to midas_motif_views.
template <gf::GaloisField F>
MidasResult midas_motif(const graph::Graph& g,
                        const partition::Partition& part,
                        const std::vector<std::uint32_t>& colors,
                        const std::vector<std::uint32_t>& motif,
                        const MidasOptions& opt, const F& f = F{}) {
  detail::require_options(part.parts == opt.n1,
                          "partition must have N1 parts");
  detail::require_options(colors.size() == g.num_vertices(),
                          "one color per vertex required");
  return midas_motif_views(partition::build_part_views(g, part), colors,
                           motif, opt, f);
}

// ---------------------------------------------------------------------------
// Weighted k-path (max-weight variant), distributed
// ---------------------------------------------------------------------------

struct MidasWeightedResult {
  std::vector<bool> feasible_weight;  // achievable k-path weights
  std::optional<std::uint32_t> max_weight;
  double vtime = 0.0;
  double wall_s = 0.0;
  runtime::CommStats total_stats;
  int resumed_from_round = -1;  // snapshot round this run resumed at
};

/// Distributed maximum-weight k-path: the path DP with a weight dimension
/// (paper Problem 3 part 2). Messages carry the whole weight axis, like
/// the scan engine.
template <gf::GaloisField F>
MidasWeightedResult midas_weighted_kpath(
    const graph::Graph& g, const partition::Partition& part,
    const std::vector<std::uint32_t>& weights, const MidasOptions& opt,
    const F& f = F{}) {
  using V = typename F::value_type;
  detail::require_options(part.parts == opt.n1,
                          "partition must have N1 parts");
  detail::require_options(weights.size() == g.num_vertices(),
                          "one weight per vertex required");
  detail::require_options(opt.n1 >= 1 && opt.n1 <= opt.n_ranks &&
                              opt.n_ranks % opt.n1 == 0,
                          "N1 must divide N (phase groups need N/N1 whole "
                          "replicas)");
  const Schedule sched =
      make_schedule(opt.k, opt.epsilon, opt.n_ranks, opt.n1, opt.n2);
  const int k = opt.k;
  const auto views = partition::build_part_views(g, part);

  std::uint32_t wmax = 0;
  {
    std::vector<std::uint32_t> sorted(weights);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (int i = 0; i < k && i < static_cast<int>(sorted.size()); ++i)
      wmax += sorted[static_cast<std::size_t>(i)];
  }
  const std::uint32_t width = wmax + 1;

  MidasWeightedResult result;
  result.feasible_weight.assign(width, false);
  Timer wall;
  // Driver state per completed round: the width-wide feasibility row.
  std::vector<std::uint8_t> found_cells(
      static_cast<std::size_t>(opt.rounds()) * width, 0);

  runtime::SpmdOptions sopt = detail::effective_spmd(opt);
  const std::uint64_t chash = detail::config_fingerprint(
      /*engine_tag=*/0x776b70617468ULL /* "wkpath" */, opt, sopt, sizeof(V),
      views,
      runtime::fnv1a(std::as_bytes(std::span<const std::uint32_t>(weights))));
  detail::CheckpointSession cs = detail::open_checkpoints(
      opt, sopt, chash, /*driver_bytes_per_round=*/width,
      /*wave_accum_bytes=*/0);  // round-boundary snapshots only
  const int start_round = cs.resumed ? static_cast<int>(cs.loaded.next_round)
                                     : 0;
  if (cs.resumed) {
    result.resumed_from_round = start_round;
    std::copy(cs.loaded.driver_state.begin(), cs.loaded.driver_state.end(),
              found_cells.begin());
  }
  std::vector<std::vector<std::uint8_t>> accum_stage(
      static_cast<std::size_t>(opt.n_ranks));
  auto driver_state_upto = [&found_cells, width](int rounds_done) {
    return std::vector<std::uint8_t>(
        found_cells.begin(),
        found_cells.begin() +
            static_cast<std::ptrdiff_t>(
                static_cast<std::size_t>(rounds_done) * width));
  };

  runtime::SpmdResult spmd = runtime::run_spmd(
      opt.n_ranks, opt.model, sopt,
      [&](runtime::Comm& world) {
        const int group_color = world.rank() / opt.n1;
        runtime::Comm group =
            world.split(group_color, world.rank() % opt.n1);
        world.resume_sync();
        const auto& view = views[static_cast<std::size_t>(group.rank())];
        const std::uint32_t nl = view.num_local();
        const std::uint32_t ng = view.num_ghosts();

        std::vector<std::uint32_t> v(nl);
        // Layout: (li * width + z) * batch + b (vertex-major, as in scan).
        std::vector<V> cur, next, ghost, scratch;
        std::vector<std::uint8_t> live_q;
        std::vector<V> accum(width);

        for (int round = start_round; round < opt.rounds(); ++round) {
          MIDAS_TRACE_SPAN("engine.round", {"round", round});
          for (std::uint32_t li = 0; li < nl; ++li)
            v[li] = v_vector(opt.seed, round, view.vertices[li], k);
          std::fill(accum.begin(), accum.end(), f.zero());

          for (std::uint64_t phase = group_color; phase < sched.phases();
               phase += sched.groups()) {
            // The weighted driver is scalar-only (par_use_bitsliced).
            MIDAS_TRACE_SPAN("engine.phase.scalar",
                             {"phase", static_cast<std::int64_t>(phase)});
            const auto [q0, q1] = sched.phase_range(phase);
            const std::size_t batch = q1 - q0;
            const std::size_t stride =
                static_cast<std::size_t>(width) * batch;
            cur.assign(stride * nl, f.zero());
            next.assign(stride * nl, f.zero());
            ghost.assign(stride * ng, f.zero());
            scratch.assign(batch, f.zero());
            live_q.assign(static_cast<std::size_t>(nl) * batch, 0);
            const std::uint64_t adj_bytes =
                view.adj.size() * sizeof(partition::NbrRef) +
                view.adj_offsets.size() * sizeof(std::uint64_t);
            const std::uint64_t working_set =
                adj_bytes + (stride * nl + stride * ng) * sizeof(V);

            // Liveness is per (vertex, iteration): compute it once per
            // phase and reuse across every level and weight row.
            for (std::uint32_t li = 0; li < nl; ++li) {
              const graph::VertexId gid = view.vertices[li];
              const V coeff = field_coeff(f, opt.seed, round, gid, 1);
              V* row = cur.data() + li * stride +
                       static_cast<std::size_t>(weights[gid]) * batch;
              std::uint8_t* lq =
                  live_q.data() + static_cast<std::size_t>(li) * batch;
              for (std::size_t b = 0; b < batch; ++b) {
                const auto q = static_cast<std::uint32_t>(q0 + b);
                lq[b] = inner_product_odd(v[li], q) ? 0 : 1;
                row[b] = lq[b] ? coeff : f.zero();
              }
            }
            world.charge_compute(static_cast<std::uint64_t>(nl) * batch);

            for (int j = 2; j <= k; ++j) {
              detail::halo_exchange(group, view, cur, ghost,
                                    batch * width);
              std::fill(next.begin(), next.end(), f.zero());
              std::uint64_t ops = 0;
              for (std::uint32_t li = 0; li < nl; ++li) {
                const graph::VertexId gid = view.vertices[li];
                const std::uint32_t wi = weights[gid];
                const V rj = field_coeff(f, opt.seed, round, gid,
                                         static_cast<std::uint32_t>(j));
                V* out_vertex = next.data() + li * stride;
                const std::uint8_t* lq =
                    live_q.data() + static_cast<std::size_t>(li) * batch;
                const auto begin = view.adj_offsets[li];
                const auto end = view.adj_offsets[li + 1];
                for (std::uint32_t z = wi; z < width; ++z) {
                  V* row = out_vertex + static_cast<std::size_t>(z) * batch;
                  // Neighbor fold into scratch, gate by liveness, then one
                  // row-wide scale by the level coefficient.
                  std::fill(scratch.begin(), scratch.end(), f.zero());
                  for (auto e = begin; e < end; ++e) {
                    const auto ref = view.adj[e];
                    const V* src =
                        (ref.is_ghost() ? ghost.data() : cur.data()) +
                        static_cast<std::size_t>(ref.index()) * stride +
                        static_cast<std::size_t>(z - wi) * batch;
                    for (std::size_t b = 0; b < batch; ++b)
                      scratch[b] = f.add(scratch[b], src[b]);
                  }
                  ops += (end - begin) * batch;
                  for (std::size_t b = 0; b < batch; ++b)
                    if (!lq[b]) scratch[b] = f.zero();
                  gf::scale_add_row(f, row, rj, scratch.data(), batch);
                  ops += batch;
                }
              }
              world.charge_compute(ops);
              world.charge_memory(ops * sizeof(V) + adj_bytes, working_set);
              std::swap(cur, next);
            }
            for (std::uint32_t li = 0; li < nl; ++li) {
              const V* vertex_block = cur.data() + li * stride;
              for (std::uint32_t z = 0; z < width; ++z) {
                const V* row =
                    vertex_block + static_cast<std::size_t>(z) * batch;
                for (std::size_t b = 0; b < batch; ++b)
                  accum[z] = f.add(accum[z], row[b]);
              }
            }
            world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
          }
          std::vector<V> buf(accum);
          world.allreduce<V>(std::span<V>(buf),
                             [&f](V& a, const V& b) { a = f.add(a, b); });
          if (world.rank() == 0) {
            for (std::uint32_t z = 0; z < width; ++z)
              if (buf[z] != f.zero())
                found_cells[static_cast<std::size_t>(round) * width + z] =
                    1;
          }
          world.barrier();
          if (cs.armed() &&
              (round + 1) % opt.checkpoint.every_rounds == 0 &&
              round + 1 < opt.rounds()) {
            detail::take_snapshot(
                world, cs, chash, round + 1, 0, opt.checkpoint.rng_state,
                accum_stage, [&] { return driver_state_upto(round + 1); });
          }
        }
      });

  if (!spmd.failed_ranks.empty() && spmd.first_error)
    std::rethrow_exception(spmd.first_error);
  result.wall_s = wall.elapsed_s();
  result.vtime = spmd.makespan;
  result.total_stats = spmd.total;
  for (int round = 0; round < opt.rounds(); ++round)
    for (std::uint32_t z = 0; z < width; ++z)
      if (found_cells[static_cast<std::size_t>(round) * width + z])
        result.feasible_weight[z] = true;
  for (std::uint32_t z = 0; z < width; ++z)
    if (result.feasible_weight[z]) result.max_weight = z;
  return result;
}

}  // namespace midas::core
