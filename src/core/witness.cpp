#include "core/witness.hpp"

#include <algorithm>
#include <functional>

#include "gf/gf256.hpp"
#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace midas::core {

using graph::Graph;
using graph::VertexId;

namespace {

/// Vertices currently alive, as a list.
std::vector<VertexId> alive_list(const std::vector<bool>& alive) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < alive.size(); ++v)
    if (alive[v]) out.push_back(v);
  return out;
}

/// Exact DFS for a simple k-path inside a (small) graph.
std::optional<std::vector<VertexId>> dfs_kpath(const Graph& g, int k) {
  const VertexId n = g.num_vertices();
  std::vector<bool> used(n, false);
  std::vector<VertexId> path;
  std::function<bool(VertexId)> extend = [&](VertexId v) -> bool {
    used[v] = true;
    path.push_back(v);
    if (static_cast<int>(path.size()) == k) return true;
    for (VertexId u : g.neighbors(v)) {
      if (!used[u] && extend(u)) return true;
    }
    used[v] = false;
    path.pop_back();
    return false;
  };
  for (VertexId s = 0; s < n; ++s) {
    if (extend(s)) return path;
  }
  return std::nullopt;
}

/// Exact search for a connected subset of exactly `j` vertices with weight
/// `z` inside a (small) graph. Grows connected sets by DFS over frontiers.
std::optional<std::vector<VertexId>> dfs_connected_jz(
    const Graph& g, const std::vector<std::uint32_t>& w, int j,
    std::uint32_t z) {
  const VertexId n = g.num_vertices();
  std::vector<bool> in_set(n, false), banned(n, false);
  std::vector<VertexId> subset;
  std::uint32_t weight = 0;

  // Enumerate connected subsets whose minimum vertex is `root`.
  std::function<bool(std::vector<VertexId>&, VertexId)> grow =
      [&](std::vector<VertexId>& frontier, VertexId root) -> bool {
    if (static_cast<int>(subset.size()) == j) return weight == z;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      std::vector<VertexId> next(frontier);
      std::vector<VertexId> closed_here;
      for (VertexId u : g.neighbors(v)) {
        if (u > root && !in_set[u] && !banned[u]) {
          next.push_back(u);
          banned[u] = true;
          closed_here.push_back(u);
        }
      }
      in_set[v] = true;
      subset.push_back(v);
      weight += w[v];
      if (grow(next, root)) return true;
      weight -= w[v];
      subset.pop_back();
      in_set[v] = false;
      for (VertexId u : closed_here) banned[u] = false;
    }
    return false;
  };

  for (VertexId root = 0; root < n; ++root) {
    subset = {root};
    weight = w[root];
    std::fill(in_set.begin(), in_set.end(), false);
    std::fill(banned.begin(), banned.end(), false);
    in_set[root] = true;
    banned[root] = true;
    if (static_cast<int>(subset.size()) == j && weight == z) return subset;
    std::vector<VertexId> frontier;
    for (VertexId u : g.neighbors(root)) {
      if (u > root) {
        frontier.push_back(u);
        banned[u] = true;
      }
    }
    if (j > 1 && grow(frontier, root)) return subset;
  }
  return std::nullopt;
}

/// Chunked peeling: repeatedly try to delete *groups* of candidate
/// vertices (halving the group size down to singletons), keeping the
/// removal whenever the oracle still answers "yes" on the residual graph.
/// Equivalent to one-at-a-time peeling (the final single-vertex pass is
/// exactly that) but typically needs O(j log n) oracle calls on much
/// smaller residual graphs instead of n calls on near-full ones.
void chunked_peel(VertexId n,
                  const std::function<bool(const std::vector<VertexId>&)>&
                      feasible_on,
                  std::vector<bool>& alive) {
  for (std::size_t chunk = std::max<std::size_t>(1, n / 2);;
       chunk /= 2) {
    const auto candidates = alive_list(alive);
    for (std::size_t begin = 0; begin < candidates.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, candidates.size());
      std::vector<VertexId> keep;
      keep.reserve(candidates.size());
      for (VertexId v : alive_list(alive)) {
        const bool removed =
            std::binary_search(candidates.begin() + static_cast<long>(begin),
                               candidates.begin() + static_cast<long>(end),
                               v);
        if (!removed) keep.push_back(v);
      }
      if (feasible_on(keep)) {
        for (std::size_t i = begin; i < end; ++i)
          alive[candidates[i]] = false;
      }
    }
    if (chunk == 1) break;
  }
}

}  // namespace

std::optional<std::vector<VertexId>> extract_kpath(
    const Graph& g, int k, const WitnessOptions& opt) {
  gf::GF256 f;
  DetectOptions d;
  d.k = k;
  d.epsilon = opt.epsilon;
  d.seed = opt.seed;
  if (!detect_kpath_seq(g, d, f).found) return std::nullopt;

  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  chunked_peel(
      g.num_vertices(),
      [&](const std::vector<VertexId>& keep) {
        const auto sub = graph::induced_subgraph(g, keep);
        DetectOptions dv = d;
        dv.seed = opt.seed + 1 + (++call);  // fresh randomness per call
        return detect_kpath_seq(sub.graph, dv, f).found;
      },
      alive);
  const auto survivors = alive_list(alive);
  const auto sub = graph::induced_subgraph(g, survivors);
  auto local = dfs_kpath(sub.graph, k);
  if (!local) return std::nullopt;  // oracle misses left an invalid core
  std::vector<VertexId> path;
  path.reserve(local->size());
  for (VertexId v : *local) path.push_back(sub.to_original[v]);
  return path;
}

std::optional<std::vector<VertexId>> extract_connected_subgraph(
    const Graph& g, const std::vector<std::uint32_t>& weights, int j,
    std::uint32_t z, const WitnessOptions& opt) {
  MIDAS_REQUIRE(weights.size() == g.num_vertices(),
                "one weight per vertex required");
  gf::GF256 f;
  ScanOptions s;
  s.k = j;
  s.epsilon = opt.epsilon;
  s.seed = opt.seed;
  s.watch_j = j;  // the oracle only cares about cell (j, z)
  s.watch_z = z;
  auto remap = [&](const std::vector<VertexId>& keep) {
    auto sub = graph::induced_subgraph(g, keep);
    std::vector<std::uint32_t> w(sub.to_original.size());
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = weights[sub.to_original[i]];
    return std::make_pair(std::move(sub), std::move(w));
  };

  {
    auto [sub, w] = remap(alive_list(std::vector<bool>(g.num_vertices(),
                                                       true)));
    if (!detect_scan_seq(sub.graph, w, s, f).at(j, z)) return std::nullopt;
  }
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  chunked_peel(
      g.num_vertices(),
      [&](const std::vector<VertexId>& keep) {
        auto [sub, w] = remap(keep);
        ScanOptions sv = s;
        sv.seed = opt.seed + 1 + (++call);
        return detect_scan_seq(sub.graph, w, sv, f).at(j, z);
      },
      alive);
  auto [sub, w] = remap(alive_list(alive));
  auto local = dfs_connected_jz(sub.graph, w, j, z);
  if (!local) return std::nullopt;
  std::vector<VertexId> subset;
  subset.reserve(local->size());
  for (VertexId v : *local) subset.push_back(sub.to_original[v]);
  std::sort(subset.begin(), subset.end());
  return subset;
}

std::optional<std::vector<VertexId>> extract_directed_kpath(
    const graph::DiGraph& g, int k, const WitnessOptions& opt) {
  gf::GF256 f;
  DetectOptions d;
  d.k = k;
  d.epsilon = opt.epsilon;
  d.seed = opt.seed;
  // Induced sub-digraph on a kept set, with the id mapping.
  auto induced = [&](const std::vector<VertexId>& keep) {
    std::vector<VertexId> sorted(keep);
    std::sort(sorted.begin(), sorted.end());
    std::vector<VertexId> new_id(g.num_vertices(), graph::kUnreachable);
    for (VertexId i = 0; i < sorted.size(); ++i) new_id[sorted[i]] = i;
    graph::DiGraphBuilder b(static_cast<VertexId>(sorted.size()));
    for (VertexId u : sorted)
      for (VertexId w : g.out_neighbors(u))
        if (new_id[w] != graph::kUnreachable) b.add_edge(new_id[u],
                                                         new_id[w]);
    return std::make_pair(b.build(), std::move(sorted));
  };
  {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    auto [sub, _] = induced(all);
    if (!detect_kpath_directed_seq(sub, d, f).found) return std::nullopt;
  }
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  chunked_peel(
      g.num_vertices(),
      [&](const std::vector<VertexId>& keep) {
        auto [sub, _] = induced(keep);
        DetectOptions dv = d;
        dv.seed = opt.seed + 1 + (++call);
        return detect_kpath_directed_seq(sub, dv, f).found;
      },
      alive);
  auto [sub, to_original] = induced(alive_list(alive));
  // Exact DFS over directed simple paths in the (small) survivor graph.
  std::vector<bool> used(sub.num_vertices(), false);
  std::vector<VertexId> path;
  std::function<bool(VertexId)> extend = [&](VertexId v) -> bool {
    used[v] = true;
    path.push_back(v);
    if (static_cast<int>(path.size()) == k) return true;
    for (VertexId u : sub.out_neighbors(v)) {
      if (!used[u] && extend(u)) return true;
    }
    used[v] = false;
    path.pop_back();
    return false;
  };
  for (VertexId s = 0; s < sub.num_vertices(); ++s) {
    if (extend(s)) {
      std::vector<VertexId> out;
      out.reserve(path.size());
      for (VertexId v : path) out.push_back(to_original[v]);
      return out;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<VertexId>> extract_tree_embedding(
    const Graph& g, const Graph& tree, const WitnessOptions& opt) {
  const int k = static_cast<int>(tree.num_vertices());
  TreeDecomposition td(tree, 0);
  gf::GF256 f;
  DetectOptions d;
  d.k = k;
  d.epsilon = opt.epsilon;
  d.seed = opt.seed;
  if (!detect_ktree_seq(g, td, d, f).found) return std::nullopt;

  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  chunked_peel(
      g.num_vertices(),
      [&](const std::vector<VertexId>& keep) {
        const auto sub = graph::induced_subgraph(g, keep);
        DetectOptions dv = d;
        dv.seed = opt.seed + 1 + (++call);
        return detect_ktree_seq(sub.graph, td, dv, f).found;
      },
      alive);

  // Exact backtracking embedding inside the (small) survivor set: map
  // template vertices in BFS order, each anchored on a mapped neighbor.
  const auto sub = graph::induced_subgraph(g, alive_list(alive));
  const auto& h = sub.graph;
  std::vector<VertexId> order;
  std::vector<int> anchor(k, -1);  // index into `order` of a mapped nbr
  {
    std::vector<bool> seen(static_cast<std::size_t>(k), false);
    std::vector<VertexId> queue{0};
    seen[0] = true;
    std::vector<int> pos(static_cast<std::size_t>(k), -1);
    while (!queue.empty()) {
      const VertexId t = queue.front();
      queue.erase(queue.begin());
      pos[t] = static_cast<int>(order.size());
      order.push_back(t);
      for (VertexId u : tree.neighbors(t)) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
    for (std::size_t p = 1; p < order.size(); ++p) {
      for (VertexId u : tree.neighbors(order[p])) {
        if (pos[u] >= 0 && pos[u] < static_cast<int>(p)) {
          anchor[order[p]] = pos[u];
          break;
        }
      }
    }
  }
  std::vector<VertexId> image(static_cast<std::size_t>(k), 0);
  std::vector<bool> used(h.num_vertices(), false);
  std::function<bool(std::size_t)> place = [&](std::size_t p) -> bool {
    if (p == order.size()) return true;
    const VertexId t = order[p];
    const VertexId anchored =
        image[order[static_cast<std::size_t>(anchor[t])]];
    for (VertexId cand : h.neighbors(anchored)) {
      if (used[cand]) continue;
      bool ok = true;
      for (VertexId u : tree.neighbors(t)) {
        for (std::size_t q = 0; q < p; ++q) {
          if (order[q] == u && !h.has_edge(cand, image[u])) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (!ok) continue;
      image[t] = cand;
      used[cand] = true;
      if (place(p + 1)) return true;
      used[cand] = false;
    }
    return false;
  };
  for (VertexId root_image = 0; root_image < h.num_vertices();
       ++root_image) {
    image[order[0]] = root_image;
    used[root_image] = true;
    if (place(1)) {
      std::vector<VertexId> mapped(static_cast<std::size_t>(k));
      for (int t = 0; t < k; ++t)
        mapped[static_cast<std::size_t>(t)] =
            sub.to_original[image[static_cast<std::size_t>(t)]];
      return mapped;
    }
    used[root_image] = false;
  }
  return std::nullopt;
}

}  // namespace midas::core
