#include "core/witness.hpp"

#include <algorithm>
#include <functional>

#include "core/motif.hpp"
#include "gf/gf256.hpp"
#include "gf/gfsmall.hpp"
#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace midas::core {

using graph::Graph;
using graph::VertexId;

namespace {

/// Vertices currently alive, as a list.
std::vector<VertexId> alive_list(const std::vector<bool>& alive) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < alive.size(); ++v)
    if (alive[v]) out.push_back(v);
  return out;
}

/// Run `fn` with the oracle field matching `l` bits (GF(2^8) table-driven,
/// GFSmall otherwise — the same dispatch the service uses).
template <typename Fn>
decltype(auto) with_witness_field(int l, Fn&& fn) {
  if (l == 8) return fn(gf::GF256{});
  return fn(gf::GFSmall(l));
}

DetectOptions oracle_options(const WitnessOptions& opt, int k) {
  DetectOptions d;
  d.k = k;
  d.epsilon = opt.epsilon;
  d.seed = opt.seed;
  d.kernel = opt.kernel;
  return d;
}

/// Exact DFS for a simple k-path inside a (small) graph.
std::optional<std::vector<VertexId>> dfs_kpath(const Graph& g, int k) {
  const VertexId n = g.num_vertices();
  std::vector<bool> used(n, false);
  std::vector<VertexId> path;
  std::function<bool(VertexId)> extend = [&](VertexId v) -> bool {
    used[v] = true;
    path.push_back(v);
    if (static_cast<int>(path.size()) == k) return true;
    for (VertexId u : g.neighbors(v)) {
      if (!used[u] && extend(u)) return true;
    }
    used[v] = false;
    path.pop_back();
    return false;
  };
  for (VertexId s = 0; s < n; ++s) {
    if (extend(s)) return path;
  }
  return std::nullopt;
}

/// Exact search for a connected subset of exactly `j` vertices with weight
/// `z` inside a (small) graph. Grows connected sets by DFS over frontiers.
std::optional<std::vector<VertexId>> dfs_connected_jz(
    const Graph& g, const std::vector<std::uint32_t>& w, int j,
    std::uint32_t z) {
  const VertexId n = g.num_vertices();
  std::vector<bool> in_set(n, false), banned(n, false);
  std::vector<VertexId> subset;
  std::uint32_t weight = 0;

  // Enumerate connected subsets whose minimum vertex is `root`.
  std::function<bool(std::vector<VertexId>&, VertexId)> grow =
      [&](std::vector<VertexId>& frontier, VertexId root) -> bool {
    if (static_cast<int>(subset.size()) == j) return weight == z;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      std::vector<VertexId> next(frontier);
      std::vector<VertexId> closed_here;
      for (VertexId u : g.neighbors(v)) {
        if (u > root && !in_set[u] && !banned[u]) {
          next.push_back(u);
          banned[u] = true;
          closed_here.push_back(u);
        }
      }
      in_set[v] = true;
      subset.push_back(v);
      weight += w[v];
      if (grow(next, root)) return true;
      weight -= w[v];
      subset.pop_back();
      in_set[v] = false;
      for (VertexId u : closed_here) banned[u] = false;
    }
    return false;
  };

  for (VertexId root = 0; root < n; ++root) {
    subset = {root};
    weight = w[root];
    std::fill(in_set.begin(), in_set.end(), false);
    std::fill(banned.begin(), banned.end(), false);
    in_set[root] = true;
    banned[root] = true;
    if (static_cast<int>(subset.size()) == j && weight == z) return subset;
    std::vector<VertexId> frontier;
    for (VertexId u : g.neighbors(root)) {
      if (u > root) {
        frontier.push_back(u);
        banned[u] = true;
      }
    }
    if (j > 1 && grow(frontier, root)) return subset;
  }
  return std::nullopt;
}

/// Exact search for a connected vertex set whose color multiset equals
/// `want` (pre-sorted) inside a (small) graph. Same rooted frontier growth
/// as dfs_connected_jz, with the multiset check at full size.
std::optional<std::vector<VertexId>> dfs_motif(
    const Graph& g, const std::vector<std::uint32_t>& colors,
    const std::vector<std::uint32_t>& want) {
  const int j = static_cast<int>(want.size());
  const VertexId n = g.num_vertices();
  std::vector<bool> in_set(n, false), banned(n, false);
  std::vector<VertexId> subset;
  auto matches = [&] {
    std::vector<std::uint32_t> got;
    got.reserve(subset.size());
    for (VertexId v : subset) got.push_back(colors[v]);
    std::sort(got.begin(), got.end());
    return got == want;
  };

  std::function<bool(std::vector<VertexId>&, VertexId)> grow =
      [&](std::vector<VertexId>& frontier, VertexId root) -> bool {
    if (static_cast<int>(subset.size()) == j) return matches();
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      std::vector<VertexId> next(frontier);
      std::vector<VertexId> closed_here;
      for (VertexId u : g.neighbors(v)) {
        if (u > root && !in_set[u] && !banned[u]) {
          next.push_back(u);
          banned[u] = true;
          closed_here.push_back(u);
        }
      }
      in_set[v] = true;
      subset.push_back(v);
      if (grow(next, root)) return true;
      subset.pop_back();
      in_set[v] = false;
      for (VertexId u : closed_here) banned[u] = false;
    }
    return false;
  };

  for (VertexId root = 0; root < n; ++root) {
    subset = {root};
    std::fill(in_set.begin(), in_set.end(), false);
    std::fill(banned.begin(), banned.end(), false);
    in_set[root] = true;
    banned[root] = true;
    if (static_cast<int>(subset.size()) == j && matches()) return subset;
    std::vector<VertexId> frontier;
    for (VertexId u : g.neighbors(root)) {
      if (u > root) {
        frontier.push_back(u);
        banned[u] = true;
      }
    }
    if (j > 1 && grow(frontier, root)) return subset;
  }
  return std::nullopt;
}

/// Exact backtracking embedding of `tree` into `h`: map template vertices
/// in BFS order, each anchored on an already-mapped neighbor. Returns the
/// image in h-local vertex ids.
std::optional<std::vector<VertexId>> exact_tree_embed(const Graph& h,
                                                      const Graph& tree) {
  const int k = static_cast<int>(tree.num_vertices());
  std::vector<VertexId> order;
  std::vector<int> anchor(k, -1);  // index into `order` of a mapped nbr
  {
    std::vector<bool> seen(static_cast<std::size_t>(k), false);
    std::vector<VertexId> queue{0};
    seen[0] = true;
    std::vector<int> pos(static_cast<std::size_t>(k), -1);
    while (!queue.empty()) {
      const VertexId t = queue.front();
      queue.erase(queue.begin());
      pos[t] = static_cast<int>(order.size());
      order.push_back(t);
      for (VertexId u : tree.neighbors(t)) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
    for (std::size_t p = 1; p < order.size(); ++p) {
      for (VertexId u : tree.neighbors(order[p])) {
        if (pos[u] >= 0 && pos[u] < static_cast<int>(p)) {
          anchor[order[p]] = pos[u];
          break;
        }
      }
    }
  }
  std::vector<VertexId> image(static_cast<std::size_t>(k), 0);
  std::vector<bool> used(h.num_vertices(), false);
  std::function<bool(std::size_t)> place = [&](std::size_t p) -> bool {
    if (p == order.size()) return true;
    const VertexId t = order[p];
    const VertexId anchored =
        image[order[static_cast<std::size_t>(anchor[t])]];
    for (VertexId cand : h.neighbors(anchored)) {
      if (used[cand]) continue;
      bool ok = true;
      for (VertexId u : tree.neighbors(t)) {
        for (std::size_t q = 0; q < p; ++q) {
          if (order[q] == u && !h.has_edge(cand, image[u])) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (!ok) continue;
      image[t] = cand;
      used[cand] = true;
      if (place(p + 1)) return true;
      used[cand] = false;
    }
    return false;
  };
  for (VertexId root_image = 0; root_image < h.num_vertices();
       ++root_image) {
    image[order[0]] = root_image;
    used[root_image] = true;
    if (place(1)) return image;
    used[root_image] = false;
  }
  return std::nullopt;
}

}  // namespace

/// Chunked peeling: repeatedly try to delete *groups* of candidate
/// vertices (halving the group size down to singletons), keeping the
/// removal whenever the oracle still answers "yes" on the residual graph.
/// Equivalent to one-at-a-time peeling (the final single-vertex pass is
/// exactly that) but typically needs O(j log n) oracle calls on much
/// smaller residual graphs instead of n calls on near-full ones.
void chunked_peel(VertexId n,
                  const std::function<bool(const std::vector<VertexId>&)>&
                      feasible_on,
                  std::vector<bool>& alive) {
  for (std::size_t chunk = std::max<std::size_t>(1, n / 2);;
       chunk /= 2) {
    const auto candidates = alive_list(alive);
    for (std::size_t begin = 0; begin < candidates.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, candidates.size());
      std::vector<VertexId> keep;
      keep.reserve(candidates.size());
      for (VertexId v : alive_list(alive)) {
        const bool removed =
            std::binary_search(candidates.begin() + static_cast<long>(begin),
                               candidates.begin() + static_cast<long>(end),
                               v);
        if (!removed) keep.push_back(v);
      }
      if (feasible_on(keep)) {
        for (std::size_t i = begin; i < end; ++i)
          alive[candidates[i]] = false;
      }
    }
    if (chunk == 1) break;
  }
}

// ---------------------------------------------------------------------------
// Exact validators
// ---------------------------------------------------------------------------

bool validate_kpath(const Graph& g, const std::vector<VertexId>& path,
                    int k) {
  if (static_cast<int>(path.size()) != k || k < 1) return false;
  std::vector<VertexId> sorted(path);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;  // repeated vertex
  for (VertexId v : path)
    if (v >= g.num_vertices()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!g.has_edge(path[i], path[i + 1])) return false;
  return true;
}

bool validate_connected_subgraph(const Graph& g,
                                 const std::vector<std::uint32_t>& weights,
                                 int j, std::uint32_t z,
                                 const std::vector<VertexId>& vs) {
  if (static_cast<int>(vs.size()) != j || j < 1) return false;
  if (weights.size() != g.num_vertices()) return false;
  std::vector<VertexId> sorted(vs);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;
  std::uint64_t weight = 0;
  for (VertexId v : vs) {
    if (v >= g.num_vertices()) return false;
    weight += weights[v];
  }
  if (weight != z) return false;
  // Connectivity by BFS over the member set.
  std::vector<bool> member_seen(vs.size(), false);
  std::vector<std::size_t> queue{0};
  member_seen[0] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::size_t i = queue.back();
    queue.pop_back();
    for (std::size_t o = 0; o < vs.size(); ++o) {
      if (!member_seen[o] && g.has_edge(vs[i], vs[o])) {
        member_seen[o] = true;
        ++reached;
        queue.push_back(o);
      }
    }
  }
  return reached == vs.size();
}

bool validate_motif(const Graph& g, const std::vector<std::uint32_t>& colors,
                    const std::vector<std::uint32_t>& motif,
                    const std::vector<VertexId>& vs) {
  if (colors.size() != g.num_vertices()) return false;
  if (motif.empty() || vs.size() != motif.size()) return false;
  std::vector<VertexId> sorted(vs);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;  // repeated vertex
  for (VertexId v : vs)
    if (v >= g.num_vertices()) return false;
  std::vector<std::uint32_t> got, want(motif);
  got.reserve(vs.size());
  for (VertexId v : vs) got.push_back(colors[v]);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got != want) return false;
  // Connectivity by BFS over the member set.
  std::vector<bool> member_seen(vs.size(), false);
  std::vector<std::size_t> queue{0};
  member_seen[0] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::size_t i = queue.back();
    queue.pop_back();
    for (std::size_t o = 0; o < vs.size(); ++o) {
      if (!member_seen[o] && g.has_edge(vs[i], vs[o])) {
        member_seen[o] = true;
        ++reached;
        queue.push_back(o);
      }
    }
  }
  return reached == vs.size();
}

bool validate_tree_embedding(const Graph& g, const Graph& tree,
                             const std::vector<VertexId>& image) {
  const VertexId k = tree.num_vertices();
  if (image.size() != k || k < 1) return false;
  std::vector<VertexId> sorted(image);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;  // not injective
  for (VertexId v : image)
    if (v >= g.num_vertices()) return false;
  for (VertexId t = 0; t < k; ++t)
    for (VertexId u : tree.neighbors(t))
      if (t < u && !g.has_edge(image[t], image[u])) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Known-feasible peels
// ---------------------------------------------------------------------------

std::optional<std::vector<VertexId>> peel_kpath(const Graph& g, int k,
                                                const WitnessOptions& opt) {
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  with_witness_field(opt.field_bits, [&](const auto& f) {
    chunked_peel(
        g.num_vertices(),
        [&](const std::vector<VertexId>& keep) {
          const auto sub = graph::induced_subgraph(g, keep);
          DetectOptions dv = oracle_options(opt, k);
          dv.seed = opt.seed + 1 + (++call);  // fresh randomness per call
          return detect_kpath_seq(sub.graph, dv, f).found;
        },
        alive);
  });
  const auto sub = graph::induced_subgraph(g, alive_list(alive));
  auto local = dfs_kpath(sub.graph, k);
  if (!local) return std::nullopt;  // no witness: the caller's "yes" lied
  std::vector<VertexId> path;
  path.reserve(local->size());
  for (VertexId v : *local) path.push_back(sub.to_original[v]);
  return path;
}

std::optional<std::vector<VertexId>> peel_connected_subgraph(
    const Graph& g, const std::vector<std::uint32_t>& weights, int j,
    std::uint32_t z, const WitnessOptions& opt) {
  MIDAS_REQUIRE(weights.size() == g.num_vertices(),
                "one weight per vertex required");
  ScanOptions s;
  s.k = j;
  s.epsilon = opt.epsilon;
  s.seed = opt.seed;
  s.kernel = opt.kernel;
  s.watch_j = j;  // the oracle only cares about cell (j, z)
  s.watch_z = z;
  auto remap = [&](const std::vector<VertexId>& keep) {
    auto sub = graph::induced_subgraph(g, keep);
    std::vector<std::uint32_t> w(sub.to_original.size());
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = weights[sub.to_original[i]];
    return std::make_pair(std::move(sub), std::move(w));
  };
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  with_witness_field(opt.field_bits, [&](const auto& f) {
    chunked_peel(
        g.num_vertices(),
        [&](const std::vector<VertexId>& keep) {
          auto [sub, w] = remap(keep);
          ScanOptions sv = s;
          sv.seed = opt.seed + 1 + (++call);
          return detect_scan_seq(sub.graph, w, sv, f).at(j, z);
        },
        alive);
  });
  auto [sub, w] = remap(alive_list(alive));
  auto local = dfs_connected_jz(sub.graph, w, j, z);
  if (!local) return std::nullopt;
  std::vector<VertexId> subset;
  subset.reserve(local->size());
  for (VertexId v : *local) subset.push_back(sub.to_original[v]);
  std::sort(subset.begin(), subset.end());
  return subset;
}

std::optional<std::vector<VertexId>> peel_tree_embedding(
    const Graph& g, const Graph& tree, const WitnessOptions& opt) {
  const int k = static_cast<int>(tree.num_vertices());
  TreeDecomposition td(tree, 0);
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  with_witness_field(opt.field_bits, [&](const auto& f) {
    chunked_peel(
        g.num_vertices(),
        [&](const std::vector<VertexId>& keep) {
          const auto sub = graph::induced_subgraph(g, keep);
          DetectOptions dv = oracle_options(opt, k);
          dv.seed = opt.seed + 1 + (++call);
          return detect_ktree_seq(sub.graph, td, dv, f).found;
        },
        alive);
  });
  const auto sub = graph::induced_subgraph(g, alive_list(alive));
  auto local = exact_tree_embed(sub.graph, tree);
  if (!local) return std::nullopt;
  std::vector<VertexId> mapped(static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t)
    mapped[static_cast<std::size_t>(t)] =
        sub.to_original[(*local)[static_cast<std::size_t>(t)]];
  return mapped;
}

std::optional<std::vector<VertexId>> peel_motif(
    const Graph& g, const std::vector<std::uint32_t>& colors,
    const std::vector<std::uint32_t>& motif, const WitnessOptions& opt) {
  MIDAS_REQUIRE(colors.size() == g.num_vertices(),
                "one color per vertex required");
  MIDAS_REQUIRE(!motif.empty(), "motif must be nonempty");
  const int k = static_cast<int>(motif.size());
  auto remap = [&](const std::vector<VertexId>& keep) {
    auto sub = graph::induced_subgraph(g, keep);
    std::vector<std::uint32_t> c(sub.to_original.size());
    for (std::size_t i = 0; i < c.size(); ++i)
      c[i] = colors[sub.to_original[i]];
    return std::make_pair(std::move(sub), std::move(c));
  };
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  with_witness_field(opt.field_bits, [&](const auto& f) {
    chunked_peel(
        g.num_vertices(),
        [&](const std::vector<VertexId>& keep) {
          auto [sub, c] = remap(keep);
          DetectOptions dv = oracle_options(opt, k);
          dv.seed = opt.seed + 1 + (++call);
          return detect_motif_seq(sub.graph, c, motif, dv, f).found;
        },
        alive);
  });
  auto [sub, c] = remap(alive_list(alive));
  std::vector<std::uint32_t> want(motif);
  std::sort(want.begin(), want.end());
  auto local = dfs_motif(sub.graph, c, want);
  if (!local) return std::nullopt;  // no witness: the caller's "yes" lied
  std::vector<VertexId> vs;
  vs.reserve(local->size());
  for (VertexId v : *local) vs.push_back(sub.to_original[v]);
  std::sort(vs.begin(), vs.end());
  return vs;
}

// ---------------------------------------------------------------------------
// Self-contained extractors (initial detection + peel)
// ---------------------------------------------------------------------------

std::optional<std::vector<VertexId>> extract_kpath(
    const Graph& g, int k, const WitnessOptions& opt) {
  const bool found = with_witness_field(opt.field_bits, [&](const auto& f) {
    return detect_kpath_seq(g, oracle_options(opt, k), f).found;
  });
  if (!found) return std::nullopt;
  return peel_kpath(g, k, opt);
}

std::optional<std::vector<VertexId>> extract_connected_subgraph(
    const Graph& g, const std::vector<std::uint32_t>& weights, int j,
    std::uint32_t z, const WitnessOptions& opt) {
  MIDAS_REQUIRE(weights.size() == g.num_vertices(),
                "one weight per vertex required");
  ScanOptions s;
  s.k = j;
  s.epsilon = opt.epsilon;
  s.seed = opt.seed;
  s.kernel = opt.kernel;
  s.watch_j = j;
  s.watch_z = z;
  const bool found = with_witness_field(opt.field_bits, [&](const auto& f) {
    return detect_scan_seq(g, weights, s, f).at(j, z);
  });
  if (!found) return std::nullopt;
  return peel_connected_subgraph(g, weights, j, z, opt);
}

std::optional<std::vector<VertexId>> extract_motif(
    const Graph& g, const std::vector<std::uint32_t>& colors,
    const std::vector<std::uint32_t>& motif, const WitnessOptions& opt) {
  MIDAS_REQUIRE(colors.size() == g.num_vertices(),
                "one color per vertex required");
  const int k = static_cast<int>(motif.size());
  const bool found = with_witness_field(opt.field_bits, [&](const auto& f) {
    return detect_motif_seq(g, colors, motif, oracle_options(opt, k), f)
        .found;
  });
  if (!found) return std::nullopt;
  return peel_motif(g, colors, motif, opt);
}

std::optional<std::vector<VertexId>> extract_directed_kpath(
    const graph::DiGraph& g, int k, const WitnessOptions& opt) {
  DetectOptions d = oracle_options(opt, k);
  // Induced sub-digraph on a kept set, with the id mapping.
  auto induced = [&](const std::vector<VertexId>& keep) {
    std::vector<VertexId> sorted(keep);
    std::sort(sorted.begin(), sorted.end());
    std::vector<VertexId> new_id(g.num_vertices(), graph::kUnreachable);
    for (VertexId i = 0; i < sorted.size(); ++i) new_id[sorted[i]] = i;
    graph::DiGraphBuilder b(static_cast<VertexId>(sorted.size()));
    for (VertexId u : sorted)
      for (VertexId w : g.out_neighbors(u))
        if (new_id[w] != graph::kUnreachable) b.add_edge(new_id[u],
                                                         new_id[w]);
    return std::make_pair(b.build(), std::move(sorted));
  };
  std::vector<bool> alive(g.num_vertices(), true);
  std::uint64_t call = 0;
  const bool peeled = with_witness_field(opt.field_bits, [&](const auto& f) {
    {
      std::vector<VertexId> all(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
      auto [sub, _] = induced(all);
      if (!detect_kpath_directed_seq(sub, d, f).found) return false;
    }
    chunked_peel(
        g.num_vertices(),
        [&](const std::vector<VertexId>& keep) {
          auto [sub, _] = induced(keep);
          DetectOptions dv = d;
          dv.seed = opt.seed + 1 + (++call);
          return detect_kpath_directed_seq(sub, dv, f).found;
        },
        alive);
    return true;
  });
  if (!peeled) return std::nullopt;
  auto [sub, to_original] = induced(alive_list(alive));
  // Exact DFS over directed simple paths in the (small) survivor graph.
  std::vector<bool> used(sub.num_vertices(), false);
  std::vector<VertexId> path;
  std::function<bool(VertexId)> extend = [&](VertexId v) -> bool {
    used[v] = true;
    path.push_back(v);
    if (static_cast<int>(path.size()) == k) return true;
    for (VertexId u : sub.out_neighbors(v)) {
      if (!used[u] && extend(u)) return true;
    }
    used[v] = false;
    path.pop_back();
    return false;
  };
  for (VertexId s = 0; s < sub.num_vertices(); ++s) {
    if (extend(s)) {
      std::vector<VertexId> out;
      out.reserve(path.size());
      for (VertexId v : path) out.push_back(to_original[v]);
      return out;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<VertexId>> extract_tree_embedding(
    const Graph& g, const Graph& tree, const WitnessOptions& opt) {
  const int k = static_cast<int>(tree.num_vertices());
  TreeDecomposition td(tree, 0);
  const bool found = with_witness_field(opt.field_bits, [&](const auto& f) {
    return detect_ktree_seq(g, td, oracle_options(opt, k), f).found;
  });
  if (!found) return std::nullopt;
  return peel_tree_embedding(g, tree, opt);
}

}  // namespace midas::core
