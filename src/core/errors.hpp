// Typed engine-configuration errors.
//
// Supervised callers need to tell "you configured the run wrong" apart
// from "the run was hit by a fault" (runtime::FaultError): the former is
// a caller bug to fix, the latter is survivable. InvalidOptionsError
// derives from std::invalid_argument so pre-existing callers that catch
// the generic contract violation keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace midas::core {

class InvalidOptionsError : public std::invalid_argument {
 public:
  explicit InvalidOptionsError(const std::string& what)
      : std::invalid_argument("invalid MidasOptions: " + what) {}
};

namespace detail {
inline void require_options(bool cond, const std::string& what) {
  if (!cond) throw InvalidOptionsError(what);
}
}  // namespace detail

}  // namespace midas::core
