// Full Problem 2 scan feasibility: heterogeneous baselines.
//
// The paper's Problem 2 constrains the *baseline* count: find connected S
// maximizing F(W(S), B(S)) subject to B(S) <= k, where B is not |S| in
// general. Algorithm 5 (and scan/scan_statistics.hpp) use the unit-
// baseline shortcut B(S) = |S|. This header implements the general case:
// the DP carries two integer weight axes — rounded baseline y and rounded
// event weight z — per subgraph size j, and the result is the set of
// achievable (B(S), W(S)) pairs over connected subgraphs of at most
// `max_size` vertices. Any statistic F(W, B) is then maximized over the
// table, with the true heterogeneous B.
//
// Cost: O(2^s * m * s^2 * (B W)^2) per round with s = max_size — use
// rounded weights aggressively (scan::round_weights / step_for_total).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/detect_par.hpp"
#include "core/detect_seq.hpp"
#include "gf/field.hpp"
#include "graph/csr.hpp"
#include "util/require.hpp"

namespace midas::core {

struct Scan2DOptions {
  int max_size = 4;               // max vertices per subgraph (degree bound)
  std::uint32_t max_baseline = 8;  // the paper's "B(S) <= k" cap
  double epsilon = 0.05;
  std::uint64_t seed = 1;
  int max_rounds = 0;

  [[nodiscard]] int rounds() const {
    return max_rounds > 0 ? max_rounds : rounds_for_epsilon(epsilon);
  }
};

/// feasible[y][z] == true => a connected subgraph with at most `max_size`
/// vertices, rounded baseline exactly y (y <= max_baseline), and rounded
/// event weight exactly z exists. "true" entries are always correct.
struct Feasibility2D {
  int max_size = 0;
  std::uint32_t max_baseline = 0;
  std::uint32_t max_weight = 0;
  std::vector<std::vector<bool>> feasible;  // [y][z]

  [[nodiscard]] bool at(std::uint32_t y, std::uint32_t z) const {
    return y <= max_baseline && z <= max_weight && feasible[y][z];
  }
};

template <gf::GaloisField F>
Feasibility2D detect_scan2d_seq(const graph::Graph& g,
                                const std::vector<std::uint32_t>& baseline,
                                const std::vector<std::uint32_t>& weight,
                                const Scan2DOptions& opt, const F& f = F{}) {
  const int s_max = opt.max_size;
  MIDAS_REQUIRE(s_max >= 1 && s_max <= 20, "max_size must be in [1,20]");
  const graph::VertexId n = g.num_vertices();
  MIDAS_REQUIRE(baseline.size() == n && weight.size() == n,
                "baseline and weight must have one entry per vertex");

  std::uint32_t wmax = 0;
  {
    std::vector<std::uint32_t> sorted(weight);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (int i = 0; i < s_max && i < static_cast<int>(sorted.size()); ++i)
      wmax += sorted[static_cast<std::size_t>(i)];
  }
  const std::uint32_t bcap = opt.max_baseline;

  Feasibility2D table;
  table.max_size = s_max;
  table.max_baseline = bcap;
  table.max_weight = wmax;
  table.feasible.assign(bcap + 1, std::vector<bool>(wmax + 1, false));
  if (n == 0) return table;

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << s_max;
  const std::uint32_t bw = bcap + 1;
  const std::uint32_t ww = wmax + 1;
  // vals[j][((y * ww + z) * n) + i]
  auto idx = [&](std::uint32_t y, std::uint32_t z, graph::VertexId i) {
    return (static_cast<std::size_t>(y) * ww + z) * n + i;
  };
  std::vector<std::uint32_t> v(n);
  std::vector<std::vector<V>> vals(static_cast<std::size_t>(s_max) + 1);
  for (int j = 1; j <= s_max; ++j)
    vals[static_cast<std::size_t>(j)].assign(
        static_cast<std::size_t>(bw) * ww * n, f.zero());
  // accum[j][y * ww + z]
  std::vector<std::vector<V>> accum(
      static_cast<std::size_t>(s_max) + 1,
      std::vector<V>(static_cast<std::size_t>(bw) * ww, f.zero()));

  for (int round = 0; round < opt.rounds(); ++round) {
    for (graph::VertexId i = 0; i < n; ++i)
      v[i] = v_vector(opt.seed, round, i, s_max);
    for (auto& a : accum) std::fill(a.begin(), a.end(), f.zero());

    for (std::uint64_t t = 0; t < iters; ++t) {
      auto& base = vals[1];
      std::fill(base.begin(), base.end(), f.zero());
      for (graph::VertexId i = 0; i < n; ++i) {
        if (baseline[i] > bcap) continue;  // vertex alone exceeds the cap
        if (!inner_product_odd(v[i], static_cast<std::uint32_t>(t)))
          base[idx(baseline[i], weight[i], i)] =
              field_coeff(f, opt.seed, round, i, 1);
      }
      for (int j = 2; j <= s_max; ++j) {
        auto& out = vals[static_cast<std::size_t>(j)];
        std::fill(out.begin(), out.end(), f.zero());
        for (graph::VertexId i = 0; i < n; ++i) {
          for (graph::VertexId u : g.neighbors(i)) {
            const V sig = sigma_coeff(f, opt.seed, round, i, u,
                                      static_cast<std::uint32_t>(j));
            for (int j1 = 1; j1 <= j - 1; ++j1) {
              const auto& own = vals[static_cast<std::size_t>(j1)];
              const auto& oth = vals[static_cast<std::size_t>(j - j1)];
              for (std::uint32_t y = 0; y < bw; ++y) {
                for (std::uint32_t z = 0; z < ww; ++z) {
                  V acc = f.zero();
                  for (std::uint32_t y1 = 0; y1 <= y; ++y1) {
                    for (std::uint32_t z1 = 0; z1 <= z; ++z1) {
                      const V a = own[idx(y1, z1, i)];
                      if (a == f.zero()) continue;
                      const V b = oth[idx(y - y1, z - z1, u)];
                      if (b == f.zero()) continue;
                      acc = f.add(acc, f.mul(a, b));
                    }
                  }
                  if (acc != f.zero()) {
                    auto& cell = out[idx(y, z, i)];
                    cell = f.add(cell, f.mul(sig, acc));
                  }
                }
              }
            }
          }
        }
      }
      // Subgroup-restricted accumulation per size (see detect_seq.hpp).
      for (int j = 1; j <= s_max; ++j) {
        if (t >= (std::uint64_t{1} << j)) continue;
        const auto& layer = vals[static_cast<std::size_t>(j)];
        auto& acc = accum[static_cast<std::size_t>(j)];
        for (std::uint32_t y = 0; y < bw; ++y) {
          for (std::uint32_t z = 0; z < ww; ++z) {
            V sum = f.zero();
            for (graph::VertexId i = 0; i < n; ++i)
              sum = f.add(sum, layer[idx(y, z, i)]);
            acc[static_cast<std::size_t>(y) * ww + z] =
                f.add(acc[static_cast<std::size_t>(y) * ww + z], sum);
          }
        }
      }
    }
    for (int j = 1; j <= s_max; ++j)
      for (std::uint32_t y = 0; y < bw; ++y)
        for (std::uint32_t z = 0; z < ww; ++z)
          if (accum[static_cast<std::size_t>(j)]
                   [static_cast<std::size_t>(y) * ww + z] != f.zero())
            table.feasible[y][z] = true;
  }
  return table;
}

/// Distributed Problem 2: the scan2d DP on the MIDAS engine. Identical
/// table as detect_scan2d_seq (bit-identical for the same seed); messages
/// carry both weight axes, i.e. (bcap+1)*(wmax+1)*N2 values per boundary
/// vertex per size step.
template <gf::GaloisField F>
Feasibility2D midas_scan2d(const graph::Graph& g,
                           const partition::Partition& part,
                           const std::vector<std::uint32_t>& baseline,
                           const std::vector<std::uint32_t>& weight,
                           const Scan2DOptions& sopt,
                           const MidasOptions& mopt, const F& f = F{}) {
  using V = typename F::value_type;
  MIDAS_REQUIRE(part.parts == mopt.n1, "partition must have N1 parts");
  const int s_max = sopt.max_size;
  MIDAS_REQUIRE(s_max >= 1 && s_max <= 20, "max_size must be in [1,20]");
  const graph::VertexId n = g.num_vertices();
  MIDAS_REQUIRE(baseline.size() == n && weight.size() == n,
                "baseline and weight must have one entry per vertex");
  const Schedule sched =
      make_schedule(s_max, sopt.epsilon, mopt.n_ranks, mopt.n1, mopt.n2);
  const auto views = partition::build_part_views(g, part);

  std::uint32_t wmax = 0;
  {
    std::vector<std::uint32_t> sorted(weight);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (int i = 0; i < s_max && i < static_cast<int>(sorted.size()); ++i)
      wmax += sorted[static_cast<std::size_t>(i)];
  }
  const std::uint32_t bw = sopt.max_baseline + 1;
  const std::uint32_t ww = wmax + 1;
  const std::uint32_t plane = bw * ww;

  Feasibility2D table;
  table.max_size = s_max;
  table.max_baseline = sopt.max_baseline;
  table.max_weight = wmax;
  table.feasible.assign(bw, std::vector<bool>(ww, false));

  std::vector<std::uint8_t> found_cells(
      static_cast<std::size_t>(sopt.rounds()) * plane, 0);

  runtime::run_spmd(mopt.n_ranks, mopt.model, [&](runtime::Comm& world) {
    const int group_color = world.rank() / mopt.n1;
    runtime::Comm group = world.split(group_color, world.rank() % mopt.n1);
    const auto& view = views[static_cast<std::size_t>(group.rank())];
    const std::uint32_t nl = view.num_local();
    const std::uint32_t ng = view.num_ghosts();

    std::vector<std::uint32_t> v(nl);
    // vals[j][(li * plane + y*ww + z) * batch + b]; ghosts mirror.
    std::vector<std::vector<V>> vals(static_cast<std::size_t>(s_max) + 1);
    std::vector<std::vector<V>> ghost(static_cast<std::size_t>(s_max) + 1);
    std::vector<V> accum(static_cast<std::size_t>(s_max + 1) * plane);

    for (int round = 0; round < sopt.rounds(); ++round) {
      for (std::uint32_t li = 0; li < nl; ++li)
        v[li] = v_vector(sopt.seed, round, view.vertices[li], s_max);
      std::fill(accum.begin(), accum.end(), f.zero());

      for (std::uint64_t phase = group_color; phase < sched.phases();
           phase += sched.groups()) {
        const auto [q0, q1] = sched.phase_range(phase);
        const std::size_t batch = q1 - q0;
        const std::size_t stride = static_cast<std::size_t>(plane) * batch;
        for (int j = 1; j <= s_max; ++j) {
          vals[static_cast<std::size_t>(j)].assign(stride * nl, f.zero());
          ghost[static_cast<std::size_t>(j)].assign(stride * ng, f.zero());
        }

        auto& base = vals[1];
        for (std::uint32_t li = 0; li < nl; ++li) {
          const graph::VertexId gid = view.vertices[li];
          if (baseline[gid] >= bw) continue;
          const V coeff = field_coeff(f, sopt.seed, round, gid, 1);
          V* row = base.data() + li * stride +
                   (static_cast<std::size_t>(baseline[gid]) * ww +
                    weight[gid]) *
                       batch;
          for (std::size_t b = 0; b < batch; ++b) {
            const auto q = static_cast<std::uint32_t>(q0 + b);
            row[b] = inner_product_odd(v[li], q) ? f.zero() : coeff;
          }
        }
        world.charge_compute(static_cast<std::uint64_t>(nl) * batch);
        detail::halo_exchange(group, view, vals[1], ghost[1],
                              batch * plane);

        for (int j = 2; j <= s_max; ++j) {
          auto& out = vals[static_cast<std::size_t>(j)];
          std::uint64_t ops = 0;
          for (std::uint32_t li = 0; li < nl; ++li) {
            const graph::VertexId gid = view.vertices[li];
            const auto begin = view.adj_offsets[li];
            const auto end = view.adj_offsets[li + 1];
            for (auto e = begin; e < end; ++e) {
              const auto ref = view.adj[e];
              const bool is_ghost = ref.is_ghost();
              const std::uint32_t idx = ref.index();
              const graph::VertexId u_gid =
                  is_ghost ? view.ghosts[idx] : view.vertices[idx];
              const V sig = sigma_coeff(f, sopt.seed, round, gid, u_gid,
                                        static_cast<std::uint32_t>(j));
              for (int j1 = 1; j1 <= j - 1; ++j1) {
                const V* own_vertex =
                    vals[static_cast<std::size_t>(j1)].data() +
                    li * stride;
                const V* oth_vertex =
                    (is_ghost
                         ? ghost[static_cast<std::size_t>(j - j1)].data()
                         : vals[static_cast<std::size_t>(j - j1)].data()) +
                    idx * stride;
                V* out_vertex = out.data() + li * stride;
                for (std::uint32_t y = 0; y < bw; ++y) {
                  for (std::uint32_t z = 0; z < ww; ++z) {
                    V* row = out_vertex +
                             (static_cast<std::size_t>(y) * ww + z) * batch;
                    for (std::uint32_t y1 = 0; y1 <= y; ++y1) {
                      for (std::uint32_t z1 = 0; z1 <= z; ++z1) {
                        const V* a = own_vertex +
                                     (static_cast<std::size_t>(y1) * ww +
                                      z1) *
                                         batch;
                        const V* c =
                            oth_vertex +
                            (static_cast<std::size_t>(y - y1) * ww +
                             (z - z1)) *
                                batch;
                        for (std::size_t b = 0; b < batch; ++b) {
                          if (a[b] == f.zero() || c[b] == f.zero())
                            continue;
                          row[b] = f.add(row[b],
                                         f.mul(sig, f.mul(a[b], c[b])));
                        }
                        ops += batch;
                      }
                    }
                  }
                }
              }
            }
          }
          world.charge_compute(ops);
          if (j < s_max)
            detail::halo_exchange(group, view,
                                  vals[static_cast<std::size_t>(j)],
                                  ghost[static_cast<std::size_t>(j)],
                                  batch * plane);
        }
        // Subgroup-restricted accumulation per size.
        for (int j = 1; j <= s_max; ++j) {
          const std::uint64_t jlimit = std::uint64_t{1} << j;
          if (q0 >= jlimit) continue;
          const std::size_t bmax =
              std::min<std::uint64_t>(batch, jlimit - q0);
          const auto& layer = vals[static_cast<std::size_t>(j)];
          V* acc = accum.data() + static_cast<std::size_t>(j) * plane;
          for (std::uint32_t li = 0; li < nl; ++li) {
            const V* vertex = layer.data() + li * stride;
            for (std::uint32_t cell = 0; cell < plane; ++cell) {
              const V* row = vertex + static_cast<std::size_t>(cell) * batch;
              for (std::size_t b = 0; b < bmax; ++b)
                acc[cell] = f.add(acc[cell], row[b]);
            }
          }
        }
      }
      std::vector<V> buf(accum);
      world.allreduce<V>(std::span<V>(buf),
                         [&f](V& a, const V& b) { a = f.add(a, b); });
      if (world.rank() == 0) {
        for (int j = 1; j <= s_max; ++j)
          for (std::uint32_t cell = 0; cell < plane; ++cell)
            if (buf[static_cast<std::size_t>(j) * plane + cell] != f.zero())
              found_cells[static_cast<std::size_t>(round) * plane + cell] =
                  1;
      }
      world.barrier();
    }
  });

  for (int round = 0; round < sopt.rounds(); ++round)
    for (std::uint32_t y = 0; y < bw; ++y)
      for (std::uint32_t z = 0; z < ww; ++z)
        if (found_cells[static_cast<std::size_t>(round) * plane + y * ww +
                        z])
          table.feasible[y][z] = true;
  return table;
}

/// Maximize an arbitrary F(W, B) over the feasible (B, W) cells. `score`
/// receives the *rounded* values; rescale inside if steps were used.
struct Scan2DOptimum {
  double score = 0.0;
  std::uint32_t baseline = 0;
  std::uint32_t weight = 0;
};
[[nodiscard]] inline Scan2DOptimum maximize_scan2d(
    const Feasibility2D& table,
    const std::function<double(std::uint32_t w, std::uint32_t b)>& score) {
  Scan2DOptimum best;
  for (std::uint32_t y = 0; y <= table.max_baseline; ++y) {
    for (std::uint32_t z = 0; z <= table.max_weight; ++z) {
      if (!table.feasible[y][z]) continue;
      const double s = score(z, y);
      if (s > best.score) {
        best.score = s;
        best.baseline = y;
        best.weight = z;
      }
    }
  }
  return best;
}

}  // namespace midas::core
