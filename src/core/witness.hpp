// Witness extraction by oracle self-reduction.
//
// Multilinear detection is a decision procedure; applications (e.g. the
// congestion case study of Section VI-F) want the actual subgraph. We
// recover one by peeling: repeatedly delete a vertex and re-run detection
// on the residual graph — if the answer stays "yes" the vertex was not
// essential. When no vertex can be deleted, the survivors are exactly the
// vertices of one witness (for k-path: the path's k vertices; for scan: the
// detected (j, z) subgraph), because any two distinct witnesses would let
// us delete a vertex unique to one of them. A final exact search inside
// the (tiny) survivor set orders/validates the witness.
//
// Detection is one-sided: "yes" may be missed with probability <= epsilon
// per call. Oracle misses are benign here — a missed "yes" merely keeps a
// removable vertex, and the final exact search tolerates extra survivors —
// so the default epsilon is a loose 1e-2 (few rounds per call). The flip
// side is load-bearing for the service's certified-answer mode
// (service/integrity.hpp): when the graph genuinely contains a witness,
// peeling can NEVER lose it (a chunk is only deleted when the oracle
// proves the residual still feasible, and oracle "yes" answers are never
// wrong), so the exact search failing to find one proves the original
// "yes" was corrupt.
//
// Two API layers:
//  * extract_* — self-contained: run an initial full-graph detection, then
//    peel. Returns nullopt when the initial detection misses.
//  * peel_* — for callers that already KNOW the graph is feasible (the
//    detection service holds a "yes" from the engine): skips the initial
//    full-graph run and goes straight to peeling, honoring the requested
//    field width and kernel. Returns nullopt only when no witness exists —
//    i.e. the caller's "yes" was wrong.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/detect_directed.hpp"
#include "core/detect_seq.hpp"
#include "graph/csr.hpp"

namespace midas::core {

struct WitnessOptions {
  double epsilon = 1e-2;   // per-oracle-call failure bound (misses are benign:
                           // a kept removable vertex, fixed by the final
                           // exact search)
  std::uint64_t seed = 1;
  int field_bits = 8;      // oracle field: 8 = GF(2^8), else GFSmall(l)
  Kernel kernel = Kernel::kAuto;  // oracle inner-loop kernel
};

/// The generic peel driver, exposed for tests (adversarial oracles) and
/// custom reductions. `feasible_on(keep)` answers "does the subgraph
/// induced on `keep` still contain a witness?" with one-sided error: a
/// "yes" must never be wrong, a "no" may be a miss. Misses only ever keep
/// removable vertices alive — when the full vertex set contains a witness,
/// so does every alive-set this driver produces.
void chunked_peel(
    graph::VertexId n,
    const std::function<bool(const std::vector<graph::VertexId>&)>&
        feasible_on,
    std::vector<bool>& alive);

/// Find an actual simple path on k vertices, or nullopt if none is found.
/// The returned sequence is a valid path in g (verified exactly).
[[nodiscard]] std::optional<std::vector<graph::VertexId>> extract_kpath(
    const graph::Graph& g, int k, const WitnessOptions& opt = {});

/// Find an actual connected subgraph with exactly j vertices and total
/// weight z (under `weights`), or nullopt. Verified exactly on return.
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
extract_connected_subgraph(const graph::Graph& g,
                           const std::vector<std::uint32_t>& weights, int j,
                           std::uint32_t z, const WitnessOptions& opt = {});

/// Find an actual Graph Motif occurrence: a connected vertex set whose
/// color multiset equals `motif` (sorted ids; verified exactly on return),
/// or nullopt if none is found.
[[nodiscard]] std::optional<std::vector<graph::VertexId>> extract_motif(
    const graph::Graph& g, const std::vector<std::uint32_t>& colors,
    const std::vector<std::uint32_t>& motif, const WitnessOptions& opt = {});

/// Directed variant of extract_kpath: the returned sequence is a valid
/// directed path (edges from each vertex to its successor).
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
extract_directed_kpath(const graph::DiGraph& g, int k,
                       const WitnessOptions& opt = {});

/// Find an actual embedding of the template tree: the returned vector maps
/// template vertex -> graph vertex (injective, edge-preserving; verified
/// exactly on return). nullopt if no embedding is found.
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
extract_tree_embedding(const graph::Graph& g, const graph::Graph& tree,
                       const WitnessOptions& opt = {});

// ---------------------------------------------------------------------------
// Known-feasible peel entry points (no initial full-graph detection)
// ---------------------------------------------------------------------------

/// Peel a k-path witness out of a graph the caller knows is feasible.
[[nodiscard]] std::optional<std::vector<graph::VertexId>> peel_kpath(
    const graph::Graph& g, int k, const WitnessOptions& opt = {});

/// Peel a connected (j, z) subgraph out of a known-feasible graph.
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
peel_connected_subgraph(const graph::Graph& g,
                        const std::vector<std::uint32_t>& weights, int j,
                        std::uint32_t z, const WitnessOptions& opt = {});

/// Peel a tree embedding out of a known-feasible graph.
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
peel_tree_embedding(const graph::Graph& g, const graph::Graph& tree,
                    const WitnessOptions& opt = {});

/// Peel a motif occurrence out of a known-feasible graph.
[[nodiscard]] std::optional<std::vector<graph::VertexId>> peel_motif(
    const graph::Graph& g, const std::vector<std::uint32_t>& colors,
    const std::vector<std::uint32_t>& motif, const WitnessOptions& opt = {});

// ---------------------------------------------------------------------------
// Exact witness validators (no randomness; the certification last word)
// ---------------------------------------------------------------------------

/// Is `path` a simple path of exactly k distinct vertices in g?
[[nodiscard]] bool validate_kpath(const graph::Graph& g,
                                  const std::vector<graph::VertexId>& path,
                                  int k);

/// Is `vs` a connected vertex set of exactly j vertices with total weight
/// z under `weights`?
[[nodiscard]] bool validate_connected_subgraph(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights, int j,
    std::uint32_t z, const std::vector<graph::VertexId>& vs);

/// Is `image` (template vertex -> graph vertex) an injective,
/// edge-preserving embedding of `tree` into g?
[[nodiscard]] bool validate_tree_embedding(
    const graph::Graph& g, const graph::Graph& tree,
    const std::vector<graph::VertexId>& image);

/// Is `vs` a connected set of distinct vertices whose color multiset under
/// `colors` equals `motif`?
[[nodiscard]] bool validate_motif(const graph::Graph& g,
                                  const std::vector<std::uint32_t>& colors,
                                  const std::vector<std::uint32_t>& motif,
                                  const std::vector<graph::VertexId>& vs);

}  // namespace midas::core
