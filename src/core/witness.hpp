// Witness extraction by oracle self-reduction.
//
// Multilinear detection is a decision procedure; applications (e.g. the
// congestion case study of Section VI-F) want the actual subgraph. We
// recover one by peeling: repeatedly delete a vertex and re-run detection
// on the residual graph — if the answer stays "yes" the vertex was not
// essential. When no vertex can be deleted, the survivors are exactly the
// vertices of one witness (for k-path: the path's k vertices; for scan: the
// detected (j, z) subgraph), because any two distinct witnesses would let
// us delete a vertex unique to one of them. A final exact search inside
// the (tiny) survivor set orders/validates the witness.
//
// Detection is one-sided: "yes" may be missed with probability <= epsilon
// per call. Oracle misses are benign here — a missed "yes" merely keeps a
// removable vertex, and the final exact search tolerates extra survivors —
// so the default epsilon is a loose 1e-2 (few rounds per call).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/detect_directed.hpp"
#include "core/detect_seq.hpp"
#include "graph/csr.hpp"

namespace midas::core {

struct WitnessOptions {
  double epsilon = 1e-2;   // per-oracle-call failure bound (misses are benign:
                           // a kept removable vertex, fixed by the final
                           // exact search)
  std::uint64_t seed = 1;
};

/// Find an actual simple path on k vertices, or nullopt if none is found.
/// The returned sequence is a valid path in g (verified exactly).
[[nodiscard]] std::optional<std::vector<graph::VertexId>> extract_kpath(
    const graph::Graph& g, int k, const WitnessOptions& opt = {});

/// Find an actual connected subgraph with exactly j vertices and total
/// weight z (under `weights`), or nullopt. Verified exactly on return.
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
extract_connected_subgraph(const graph::Graph& g,
                           const std::vector<std::uint32_t>& weights, int j,
                           std::uint32_t z, const WitnessOptions& opt = {});

/// Directed variant of extract_kpath: the returned sequence is a valid
/// directed path (edges from each vertex to its successor).
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
extract_directed_kpath(const graph::DiGraph& g, int k,
                       const WitnessOptions& opt = {});

/// Find an actual embedding of the template tree: the returned vector maps
/// template vertex -> graph vertex (injective, edge-preserving; verified
/// exactly on return). nullopt if no embedding is found.
[[nodiscard]] std::optional<std::vector<graph::VertexId>>
extract_tree_embedding(const graph::Graph& g, const graph::Graph& tree,
                       const WitnessOptions& opt = {});

}  // namespace midas::core
