// Koutis' integer formulation — a faithful transcription of the paper's
// Algorithm 1 (MULTILINEARDETECTPATH), provided as an executable reference.
//
// Iteration t assigns x_i = 1 + (-1)^{<v_i, t>} in {0, 2} and evaluates the
// walk polynomial over Z / 2^{k+1} Z. Summed over the 2^k iterations, a
// monomial containing a square contributes a multiple of 2^{k+1} (zero),
// and a multilinear monomial with linearly independent v's contributes
// exactly 2^k — so a nonzero total certifies a multilinear term.
//
// KNOWN LIMITATION (why the paper itself implements the GF(2^l) variant,
// and why this reproduction's production detectors live in detect_seq.hpp):
// with Z2 coefficients the total is 2^k * (number of surviving multilinear
// walk-witnesses mod 2). On an undirected graph every simple k-path appears
// as two directed walks, so witness counts pair up and the total vanishes —
// Algorithm 1 as printed answers "no" on every undirected instance with
// k >= 2. It remains correct and useful for (a) demonstrating the square-
// annihilation identity, (b) instances with odd witness counts (e.g.
// counting walks from a fixed start on directed-style reductions), and the
// tests pin down both behaviours.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hashrand.hpp"
#include "gf/zmod.hpp"
#include "graph/csr.hpp"
#include "util/require.hpp"

namespace midas::core {

struct KoutisResult {
  std::uint32_t total = 0;  // final P mod 2^{k+1}
  bool nonzero = false;     // the algorithm's "yes"
};

/// One round of Algorithm 1, verbatim: random v_i from `seed`, evaluate the
/// k-path walk polynomial over Z / 2^{k+1} Z across all 2^k iterations.
[[nodiscard]] inline KoutisResult koutis_kpath_round(const graph::Graph& g,
                                                     int k,
                                                     std::uint64_t seed) {
  MIDAS_REQUIRE(k >= 1 && k <= 24, "k must be in [1,24]");
  const graph::VertexId n = g.num_vertices();
  const gf::ZMod2e ring(k + 1);
  using V = gf::ZMod2e::value_type;

  std::vector<std::uint32_t> v(n);
  for (graph::VertexId i = 0; i < n; ++i) v[i] = v_vector(seed, 0, i, k);

  V total = 0;
  std::vector<V> cur(n), next(n);
  const std::uint64_t iters = std::uint64_t{1} << k;
  for (std::uint64_t t = 0; t < iters; ++t) {
    // Base case: P(i,1) = 1 + (-1)^{<v_i, t>}.
    for (graph::VertexId i = 0; i < n; ++i)
      cur[i] = inner_product_odd(v[i], static_cast<std::uint32_t>(t)) ? 0 : 2;
    // Inductive step: P(i,j) = x_i * sum_u P(u, j-1).
    for (int j = 2; j <= k; ++j) {
      for (graph::VertexId i = 0; i < n; ++i) {
        V acc = 0;
        for (graph::VertexId u : g.neighbors(i)) acc = ring.add(acc, cur[u]);
        const V xi =
            inner_product_odd(v[i], static_cast<std::uint32_t>(t)) ? 0 : 2;
        next[i] = ring.mul(xi, acc);
      }
      std::swap(cur, next);
    }
    V sum = 0;
    for (graph::VertexId i = 0; i < n; ++i) sum = ring.add(sum, cur[i]);
    total = ring.add(total, sum);
  }
  return {total, total != 0};
}

/// Evaluate a single monomial prod_i x_i^{e_i} over all 2^k iterations —
/// the building block of the square-annihilation property tests.
/// `exponents[i]` is e_i; the degree must be <= k.
[[nodiscard]] inline std::uint32_t koutis_monomial_sum(
    const std::vector<std::uint32_t>& exponents, int k, std::uint64_t seed) {
  std::uint32_t degree = 0;
  for (auto e : exponents) degree += e;
  MIDAS_REQUIRE(degree <= static_cast<std::uint32_t>(k),
                "monomial degree exceeds k");
  const gf::ZMod2e ring(k + 1);
  std::vector<std::uint32_t> v(exponents.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = v_vector(seed, 0, static_cast<std::uint32_t>(i), k);
  std::uint32_t total = 0;
  const std::uint64_t iters = std::uint64_t{1} << k;
  for (std::uint64_t t = 0; t < iters; ++t) {
    std::uint32_t prod = 1;
    for (std::size_t i = 0; i < exponents.size(); ++i) {
      const std::uint32_t xi =
          inner_product_odd(v[i], static_cast<std::uint32_t>(t)) ? 0 : 2;
      for (std::uint32_t e = 0; e < exponents[i]; ++e)
        prod = ring.mul(prod, xi);
    }
    total = ring.add(total, prod);
  }
  return total;
}

}  // namespace midas::core
