// Sequential multilinear detection (paper Section III, Algorithm 1, and the
// per-application polynomials of Sections III-D and V).
//
// All three detectors share the same skeleton: per round, draw hash-derived
// randomness (v_i in Z2^k per vertex; field coefficients per template
// position); for each iteration t in [0, 2^k) evaluate the application's
// polynomial with x_i replaced by its iteration value and XOR the result
// into a round accumulator; a nonzero accumulator proves a multilinear
// (square-free) degree-k term, i.e. the subgraph exists. "No" answers are
// always correct; "yes" is produced with probability >= 1/5 per round
// (Theorem 1), driven below epsilon by running multiple rounds.
//
// Implementation note (documented in DESIGN.md): we implement Williams'
// GF(2^l) refinement — the variant the paper says it implements. The
// iteration value of x_i is the indicator [<v_i, t> = 0] scaled by a fresh
// coefficient per (vertex, template position); the factor-2 of the integer
// matrix representation ("1 + (-1)^{v*t}") is dropped because it is the
// characteristic. The per-position coefficients are what break the
// direction/automorphism pairing of witnesses that would otherwise cancel
// in characteristic 2.
//
// Each detector exists in two kernels selected by DetectOptions::kernel:
// the scalar reference path (one field element at a time) and a bit-sliced
// path that evaluates 64 consecutive iterations per step over
// gf::BitslicedGF (see src/gf/bitsliced.hpp and docs/ALGORITHM.md section
// 6). Both kernels produce bit-identical per-round accumulators — the
// bit-sliced path only regroups the same XORs — which the tests assert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/hashrand.hpp"
#include "core/schedule.hpp"
#include "core/tree_template.hpp"
#include "gf/bitsliced.hpp"
#include "gf/field.hpp"
#include "graph/csr.hpp"
#include "runtime/trace.hpp"
#include "util/require.hpp"

namespace midas::core {

/// Which inner-loop implementation a detector runs. kAuto picks bitsliced
/// whenever the field supports it (GF(2^l), l <= 16, modulus() exposed) and
/// falls back to scalar otherwise; kBitsliced on an unsupported field is an
/// error.
enum class Kernel { kAuto, kScalar, kBitsliced };

struct DetectOptions {
  int k = 4;                 // subgraph size (path/tree vertices)
  double epsilon = 0.05;     // failure probability bound for "yes" instances
  std::uint64_t seed = 1;    // randomness seed; fixes the whole run
  int max_rounds = 0;        // if > 0, overrides the epsilon-derived count
  bool early_exit = true;    // stop after the first successful round
  Kernel kernel = Kernel::kAuto;  // inner-loop implementation

  [[nodiscard]] int rounds() const {
    return max_rounds > 0 ? max_rounds : rounds_for_epsilon(epsilon);
  }
};

struct DetectResult {
  bool found = false;
  int rounds_run = 0;
  int found_round = -1;          // first round that returned nonzero
  std::uint64_t iterations = 0;  // total polynomial evaluations performed
  /// Per-round XOR accumulator values (field elements widened to 64 bits),
  /// one entry per round run — the cross-kernel bit-exactness witness.
  std::vector<std::uint64_t> round_totals;
};

namespace detail_seq {

/// Decide scalar vs bitsliced for this (field, request) pair; rejects an
/// explicit bitsliced request on a field the engine cannot mirror.
template <typename F>
[[nodiscard]] inline bool use_bitsliced(const F& f, Kernel kernel) {
  if constexpr (gf::Bitsliceable<F>) {
    if (kernel == Kernel::kScalar) return false;
    return f.bits() <= 16;
  } else {
    (void)f;
    MIDAS_REQUIRE(kernel != Kernel::kBitsliced,
                  "kernel=bitsliced requires a GF(2^l) field with l <= 16 "
                  "that exposes modulus() (GF256 or GFSmall)");
    return false;
  }
}

// ---------------------------------------------------------------------------
// k-path kernels
// ---------------------------------------------------------------------------

template <gf::GaloisField F>
DetectResult kpath_scalar(const graph::Graph& g, const DetectOptions& opt,
                          const F& f) {
  const int k = opt.k;
  const graph::VertexId n = g.num_vertices();
  DetectResult res;

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  std::vector<std::uint32_t> v(n);
  std::vector<std::uint8_t> live(n);
  std::vector<V> cur(n), next(n);
  // r[j * n + i] is the coefficient of vertex i at path level j (1-based).
  std::vector<V> r(static_cast<std::size_t>(k) * n);

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i) {
      v[i] = v_vector(opt.seed, round, i, k);
      for (int j = 1; j <= k; ++j)
        r[static_cast<std::size_t>(j - 1) * n + i] =
            field_coeff(f, opt.seed, round, i,
                        static_cast<std::uint32_t>(j));
    }
    V total = f.zero();
    for (std::uint64_t t = 0; t < iters; ++t) {
      // The liveness flag [<v_i, t> = 0] is per (vertex, iteration); compute
      // it once here and reuse it across all k levels.
      for (graph::VertexId i = 0; i < n; ++i) {
        live[i] = !inner_product_odd(v[i], static_cast<std::uint32_t>(t));
        cur[i] = live[i] ? r[i] : f.zero();
      }
      for (int j = 2; j <= k; ++j) {
        const V* rj = r.data() + static_cast<std::size_t>(j - 1) * n;
        for (graph::VertexId i = 0; i < n; ++i) {
          if (!live[i]) {
            next[i] = f.zero();  // x_i evaluates to 0 this iteration
            continue;
          }
          V acc = f.zero();
          for (graph::VertexId u : g.neighbors(i)) acc = f.add(acc, cur[u]);
          next[i] = f.mul(rj[i], acc);
        }
        std::swap(cur, next);
      }
      V sum = f.zero();
      for (graph::VertexId i = 0; i < n; ++i) sum = f.add(sum, cur[i]);
      total = f.add(total, sum);
      ++res.iterations;
    }
    ++res.rounds_run;
    res.round_totals.push_back(static_cast<std::uint64_t>(total));
    if (total != f.zero()) {
      if (!res.found) res.found_round = round;  // first nonzero round wins
      res.found = true;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

template <gf::Bitsliceable F>
DetectResult kpath_bitsliced(const graph::Graph& g, const DetectOptions& opt,
                             const F& f) {
  const int k = opt.k;
  const graph::VertexId n = g.num_vertices();
  DetectResult res;

  using V = typename F::value_type;
  using BS = gf::BitslicedGF;
  using word = BS::word;
  const BS bs(f);
  const int L = bs.words();
  const std::uint64_t iters = std::uint64_t{1} << k;

  std::vector<std::uint32_t> v(n);
  std::vector<word> live(n);
  // cur/next hold one 64-lane block (L words) per vertex.
  std::vector<word> cur(static_cast<std::size_t>(n) * L);
  std::vector<word> next(static_cast<std::size_t>(n) * L);
  std::vector<V> r0(n);  // level-1 coefficients (broadcast into the base case)
  // mats[(j - 2) * n + i]: multiply-by-r_{i,j} matrix for levels 2..k.
  std::vector<BS::Matrix> mats(static_cast<std::size_t>(k - 1) * n);

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i) {
      v[i] = v_vector(opt.seed, round, i, k);
      r0[i] = field_coeff(f, opt.seed, round, i, 1);
      for (int j = 2; j <= k; ++j)
        mats[static_cast<std::size_t>(j - 2) * n + i] = bs.matrix(
            field_coeff(f, opt.seed, round, i, static_cast<std::uint32_t>(j)));
    }
    // Lift the plane count to a compile-time constant so the per-block
    // loops below unroll and vectorize (see dispatch_width).
    V total = gf::detail_bs::dispatch_width(L, [&](auto lc) {
      constexpr int LC = decltype(lc)::value;
      V tot = f.zero();
      for (std::uint64_t base = 0; base < iters; base += BS::kLanes) {
        const int lanes = static_cast<int>(
            std::min<std::uint64_t>(BS::kLanes, iters - base));
        for (graph::VertexId i = 0; i < n; ++i) {
          live[i] = BS::live_mask(v[i], base, lanes);
          bs.broadcast_w<LC>(&cur[static_cast<std::size_t>(i) * LC], r0[i],
                             live[i]);
        }
        for (int j = 2; j <= k; ++j) {
          const BS::Matrix* mj =
              mats.data() + static_cast<std::size_t>(j - 2) * n;
          for (graph::VertexId i = 0; i < n; ++i) {
            word* out = &next[static_cast<std::size_t>(i) * LC];
            if (live[i] == 0) {
              bs.clear_w<LC>(out);
              continue;
            }
            word acc[LC] = {};
            for (graph::VertexId u : g.neighbors(i))
              bs.add_into_w<LC>(acc, &cur[static_cast<std::size_t>(u) * LC]);
            bs.mul_matrix_masked_w<LC>(out, mj[i], acc, live[i]);
          }
          std::swap(cur, next);
        }
        word sum[LC] = {};
        for (graph::VertexId i = 0; i < n; ++i)
          bs.add_into_w<LC>(sum, &cur[static_cast<std::size_t>(i) * LC]);
        tot = f.add(tot, static_cast<V>(BS::fold_xor_w<LC>(sum)));
        res.iterations += static_cast<std::uint64_t>(lanes);
      }
      return tot;
    });
    ++res.rounds_run;
    res.round_totals.push_back(static_cast<std::uint64_t>(total));
    if (total != f.zero()) {
      if (!res.found) res.found_round = round;  // first nonzero round wins
      res.found = true;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

}  // namespace detail_seq

/// Human-readable name of the kernel a (field, request) pair resolves to —
/// what the CLI and bench headers print to make outputs self-describing.
template <gf::GaloisField F>
[[nodiscard]] inline const char* kernel_name(const F& f, Kernel kernel) {
  return detail_seq::use_bitsliced(f, kernel) ? "bitsliced" : "scalar";
}

/// Decide whether `g` contains a simple path on exactly k vertices.
template <gf::GaloisField F>
DetectResult detect_kpath_seq(const graph::Graph& g, const DetectOptions& opt,
                              const F& f = F{}) {
  const int k = opt.k;
  MIDAS_REQUIRE(k >= 1 && k <= 28, "k must be in [1,28]");
  const graph::VertexId n = g.num_vertices();
  DetectResult res;
  if (n == 0) return res;
  if (k == 1) {  // any vertex is a 1-path
    res.found = n > 0;
    res.found_round = 0;
    return res;
  }
  const bool bitsliced = detail_seq::use_bitsliced(f, opt.kernel);
  MIDAS_TRACE_SPAN(bitsliced ? "seq.kpath.bitsliced" : "seq.kpath.scalar",
                   {"k", k});
  if (bitsliced) {
    if constexpr (gf::Bitsliceable<F>)
      return detail_seq::kpath_bitsliced(g, opt, f);
  }
  return detail_seq::kpath_scalar(g, opt, f);
}

// ---------------------------------------------------------------------------
// k-tree kernels
// ---------------------------------------------------------------------------

namespace detail_seq {

template <gf::GaloisField F>
DetectResult ktree_scalar(const graph::Graph& g, const TreeDecomposition& td,
                          const DetectOptions& opt, const F& f) {
  const int k = td.k();
  const graph::VertexId n = g.num_vertices();
  DetectResult res;

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  const auto& subs = td.subtemplates();
  std::vector<std::uint32_t> v(n);
  // vals[s][i]: polynomial value of subtemplate s at vertex i.
  std::vector<std::vector<V>> vals(subs.size(), std::vector<V>(n));

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i)
      v[i] = v_vector(opt.seed, round, i, k);
    V total = f.zero();
    for (std::uint64_t t = 0; t < iters; ++t) {
      for (std::size_t s = 0; s < subs.size(); ++s) {
        const auto& sub = subs[s];
        auto& out = vals[s];
        if (sub.child1 < 0) {
          // Leaf: x_i scaled by a coefficient unique to this template
          // position (leaf ids are unique within the decomposition).
          for (graph::VertexId i = 0; i < n; ++i) {
            const bool live =
                !inner_product_odd(v[i], static_cast<std::uint32_t>(t));
            out[i] = live ? field_coeff(f, opt.seed, round, i,
                                        static_cast<std::uint32_t>(s))
                          : f.zero();
          }
        } else {
          const auto& own = vals[static_cast<std::size_t>(sub.child1)];
          const auto& nbr = vals[static_cast<std::size_t>(sub.child2)];
          for (graph::VertexId i = 0; i < n; ++i) {
            if (own[i] == f.zero()) {
              out[i] = f.zero();
              continue;
            }
            V acc = f.zero();
            for (graph::VertexId u : g.neighbors(i)) acc = f.add(acc, nbr[u]);
            out[i] = f.mul(own[i], acc);
          }
        }
      }
      V sum = f.zero();
      const auto& root_vals = vals[static_cast<std::size_t>(td.root_id())];
      for (graph::VertexId i = 0; i < n; ++i) sum = f.add(sum, root_vals[i]);
      total = f.add(total, sum);
      ++res.iterations;
    }
    ++res.rounds_run;
    res.round_totals.push_back(static_cast<std::uint64_t>(total));
    if (total != f.zero()) {
      if (!res.found) res.found_round = round;  // first nonzero round wins
      res.found = true;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

template <gf::Bitsliceable F>
DetectResult ktree_bitsliced(const graph::Graph& g,
                             const TreeDecomposition& td,
                             const DetectOptions& opt, const F& f) {
  const int k = td.k();
  const graph::VertexId n = g.num_vertices();
  DetectResult res;

  using V = typename F::value_type;
  using BS = gf::BitslicedGF;
  using word = BS::word;
  const BS bs(f);
  const int L = bs.words();
  const std::uint64_t iters = std::uint64_t{1} << k;
  const auto& subs = td.subtemplates();

  std::vector<std::uint32_t> v(n);
  std::vector<word> live(n);
  // vals[s]: one 64-lane block per vertex for subtemplate s.
  std::vector<std::vector<word>> vals(
      subs.size(), std::vector<word>(static_cast<std::size_t>(n) * L));
  // leafc[s][i]: leaf coefficient (a pure function of round/i/s, hoisted
  // out of the iteration loop; the scalar kernel recomputes it per t).
  std::vector<std::vector<V>> leafc(subs.size());

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i)
      v[i] = v_vector(opt.seed, round, i, k);
    for (std::size_t s = 0; s < subs.size(); ++s) {
      if (subs[s].child1 >= 0) continue;
      leafc[s].resize(n);
      for (graph::VertexId i = 0; i < n; ++i)
        leafc[s][i] = field_coeff(f, opt.seed, round, i,
                                  static_cast<std::uint32_t>(s));
    }
    V total = gf::detail_bs::dispatch_width(L, [&](auto lc) {
      constexpr int LC = decltype(lc)::value;
      V tot = f.zero();
      for (std::uint64_t base = 0; base < iters; base += BS::kLanes) {
        const int lanes = static_cast<int>(
            std::min<std::uint64_t>(BS::kLanes, iters - base));
        for (graph::VertexId i = 0; i < n; ++i)
          live[i] = BS::live_mask(v[i], base, lanes);
        for (std::size_t s = 0; s < subs.size(); ++s) {
          const auto& sub = subs[s];
          auto& out = vals[s];
          if (sub.child1 < 0) {
            for (graph::VertexId i = 0; i < n; ++i)
              bs.broadcast_w<LC>(&out[static_cast<std::size_t>(i) * LC],
                                 leafc[s][i], live[i]);
          } else {
            const auto& own = vals[static_cast<std::size_t>(sub.child1)];
            const auto& nbr = vals[static_cast<std::size_t>(sub.child2)];
            for (graph::VertexId i = 0; i < n; ++i) {
              word* out_i = &out[static_cast<std::size_t>(i) * LC];
              const word* own_i = &own[static_cast<std::size_t>(i) * LC];
              if (BS::is_zero_w<LC>(own_i)) {
                bs.clear_w<LC>(out_i);
                continue;
              }
              word acc[LC] = {};
              for (graph::VertexId u : g.neighbors(i))
                bs.add_into_w<LC>(acc, &nbr[static_cast<std::size_t>(u) * LC]);
              bs.mul_w<LC>(out_i, own_i, acc);
            }
          }
        }
        word sum[LC] = {};
        const auto& root_vals = vals[static_cast<std::size_t>(td.root_id())];
        for (graph::VertexId i = 0; i < n; ++i)
          bs.add_into_w<LC>(sum, &root_vals[static_cast<std::size_t>(i) * LC]);
        tot = f.add(tot, static_cast<V>(BS::fold_xor_w<LC>(sum)));
        res.iterations += static_cast<std::uint64_t>(lanes);
      }
      return tot;
    });
    ++res.rounds_run;
    res.round_totals.push_back(static_cast<std::uint64_t>(total));
    if (total != f.zero()) {
      if (!res.found) res.found_round = round;  // first nonzero round wins
      res.found = true;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

}  // namespace detail_seq

/// Decide whether `g` contains a (non-induced) embedding of the template
/// tree described by `td`.
template <gf::GaloisField F>
DetectResult detect_ktree_seq(const graph::Graph& g,
                              const TreeDecomposition& td,
                              const DetectOptions& opt, const F& f = F{}) {
  const int k = td.k();
  MIDAS_REQUIRE(k >= 1 && k <= 28, "template size must be in [1,28]");
  const graph::VertexId n = g.num_vertices();
  DetectResult res;
  if (n == 0) return res;
  const bool bitsliced = detail_seq::use_bitsliced(f, opt.kernel);
  MIDAS_TRACE_SPAN(bitsliced ? "seq.ktree.bitsliced" : "seq.ktree.scalar",
                   {"k", k});
  if (bitsliced) {
    if constexpr (gf::Bitsliceable<F>)
      return detail_seq::ktree_bitsliced(g, td, opt, f);
  }
  return detail_seq::ktree_scalar(g, td, opt, f);
}

// ---------------------------------------------------------------------------
// Scan statistics feasibility (paper Section V-B, Algorithm 5)
// ---------------------------------------------------------------------------

/// feasible[j][z] == true  =>  g has a connected subgraph of exactly j
/// vertices with total (rounded) weight exactly z. "true" entries are
/// always correct ("no" entries may be false negatives with prob <= eps).
struct FeasibilityTable {
  int k = 0;
  std::uint32_t max_weight = 0;
  std::vector<std::vector<bool>> feasible;  // [j][z], j in [1,k]

  [[nodiscard]] bool at(int j, std::uint32_t z) const {
    return j >= 1 && j <= k && z <= max_weight &&
           feasible[static_cast<std::size_t>(j)][z];
  }
};

struct ScanOptions {
  int k = 4;               // maximum subgraph size
  double epsilon = 0.05;
  std::uint64_t seed = 1;
  int max_rounds = 0;
  /// If watch_j > 0, stop as soon as cell (watch_j, watch_z) is feasible —
  /// the witness-extraction oracle only needs one cell, and a "yes" needs
  /// ~log(5/4)^-1 expected rounds rather than the full amplification.
  int watch_j = 0;
  std::uint32_t watch_z = 0;
  Kernel kernel = Kernel::kAuto;  // inner-loop implementation

  [[nodiscard]] int rounds() const {
    return max_rounds > 0 ? max_rounds : rounds_for_epsilon(epsilon);
  }
};

namespace detail_seq {

template <gf::GaloisField F>
void scan_scalar(const graph::Graph& g,
                 const std::vector<std::uint32_t>& weights,
                 const ScanOptions& opt, const F& f, FeasibilityTable& table) {
  const int k = opt.k;
  const graph::VertexId n = g.num_vertices();
  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  const std::uint32_t width = table.max_weight + 1;
  std::vector<std::uint32_t> v(n);
  // vals[j][z * n + i]: value of P(i, j, z) at the current iteration.
  std::vector<std::vector<V>> vals(static_cast<std::size_t>(k) + 1);
  for (int j = 1; j <= k; ++j)
    vals[static_cast<std::size_t>(j)].assign(
        static_cast<std::size_t>(width) * n, f.zero());
  // accum[j][z]: XOR over iterations of sum_i P(i, j, z).
  std::vector<std::vector<V>> accum(static_cast<std::size_t>(k) + 1,
                                    std::vector<V>(width, f.zero()));

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i)
      v[i] = v_vector(opt.seed, round, i, k);
    for (auto& a : accum) std::fill(a.begin(), a.end(), f.zero());

    for (std::uint64_t t = 0; t < iters; ++t) {
      // Base case: P(i, 1, w(i)) = r_i * [v_i ⟂ t].
      auto& base = vals[1];
      std::fill(base.begin(), base.end(), f.zero());
      for (graph::VertexId i = 0; i < n; ++i) {
        const bool live =
            !inner_product_odd(v[i], static_cast<std::uint32_t>(t));
        if (live)
          base[static_cast<std::size_t>(weights[i]) * n + i] =
              field_coeff(f, opt.seed, round, i, 1);
      }
      // Inductive step over sizes.
      for (int j = 2; j <= k; ++j) {
        auto& out = vals[static_cast<std::size_t>(j)];
        std::fill(out.begin(), out.end(), f.zero());
        for (graph::VertexId i = 0; i < n; ++i) {
          for (graph::VertexId u : g.neighbors(i)) {
            const V sig = sigma_coeff(f, opt.seed, round, i, u,
                                      static_cast<std::uint32_t>(j));
            for (int j1 = 1; j1 <= j - 1; ++j1) {
              const auto& own = vals[static_cast<std::size_t>(j1)];
              const auto& oth = vals[static_cast<std::size_t>(j - j1)];
              for (std::uint32_t z = 0; z < width; ++z) {
                V acc = f.zero();
                for (std::uint32_t z1 = 0; z1 <= z; ++z1) {
                  const V a = own[static_cast<std::size_t>(z1) * n + i];
                  if (a == f.zero()) continue;
                  const V b =
                      oth[static_cast<std::size_t>(z - z1) * n + u];
                  acc = f.add(acc, f.mul(a, b));
                }
                if (acc != f.zero()) {
                  auto& cell = out[static_cast<std::size_t>(z) * n + i];
                  cell = f.add(cell, f.mul(sig, acc));
                }
              }
            }
          }
        }
      }
      // Accumulate sums over vertices for every (j, z). Size-j detection
      // needs its monomials counted over a 2^j-element subgroup: summing a
      // degree-j term over all 2^k iterations counts it 2^{k-rank} times
      // with rank <= j < k — always even, i.e. it always cancels. So the
      // size-j accumulator only folds iterations t < 2^j, for which the
      // inner products <v_i, t> see exactly the low j bits of v_i; this is
      // degree-j detection with j-dimensional vectors at no extra cost.
      // (The paper's Algorithm 5 sidesteps this by only returning size k.)
      for (int j = 1; j <= k; ++j) {
        if (t >= (std::uint64_t{1} << j)) continue;
        const auto& layer = vals[static_cast<std::size_t>(j)];
        auto& acc = accum[static_cast<std::size_t>(j)];
        for (std::uint32_t z = 0; z < width; ++z) {
          V sum = f.zero();
          for (graph::VertexId i = 0; i < n; ++i)
            sum = f.add(sum, layer[static_cast<std::size_t>(z) * n + i]);
          acc[z] = f.add(acc[z], sum);
        }
      }
    }
    // Fold this round's detections into the table (true entries stay true).
    for (int j = 1; j <= k; ++j)
      for (std::uint32_t z = 0; z < width; ++z)
        if (accum[static_cast<std::size_t>(j)][z] != f.zero())
          table.feasible[static_cast<std::size_t>(j)][z] = true;
    if (opt.watch_j > 0 && table.at(opt.watch_j, opt.watch_z)) break;
  }
}

template <gf::Bitsliceable F>
void scan_bitsliced(const graph::Graph& g,
                    const std::vector<std::uint32_t>& weights,
                    const ScanOptions& opt, const F& f,
                    FeasibilityTable& table) {
  const int k = opt.k;
  const graph::VertexId n = g.num_vertices();
  using V = typename F::value_type;
  using BS = gf::BitslicedGF;
  using word = BS::word;
  const BS bs(f);
  const int L = bs.words();
  const std::uint64_t iters = std::uint64_t{1} << k;
  const std::uint32_t width = table.max_weight + 1;
  std::vector<std::uint32_t> v(n);
  std::vector<word> live(n);
  std::vector<V> c1(n);  // base-case coefficients, hoisted per round
  // vals[j][(z * n + i) * L .. +L): the block of P(i, j, z).
  std::vector<std::vector<word>> vals(static_cast<std::size_t>(k) + 1);
  for (int j = 1; j <= k; ++j)
    vals[static_cast<std::size_t>(j)].assign(
        static_cast<std::size_t>(width) * n * L, 0);
  std::vector<std::vector<V>> accum(static_cast<std::size_t>(k) + 1,
                                    std::vector<V>(width, f.zero()));

  for (int round = 0; round < opt.rounds(); ++round) {
    MIDAS_TRACE_SPAN("seq.round", {"round", round});
    for (graph::VertexId i = 0; i < n; ++i) {
      v[i] = v_vector(opt.seed, round, i, k);
      c1[i] = field_coeff(f, opt.seed, round, i, 1);
    }
    for (auto& a : accum) std::fill(a.begin(), a.end(), f.zero());

    for (std::uint64_t base_t = 0; base_t < iters; base_t += BS::kLanes) {
      const int lanes = static_cast<int>(
          std::min<std::uint64_t>(BS::kLanes, iters - base_t));
      for (graph::VertexId i = 0; i < n; ++i)
        live[i] = BS::live_mask(v[i], base_t, lanes);
      auto& base = vals[1];
      std::fill(base.begin(), base.end(), 0);
      for (graph::VertexId i = 0; i < n; ++i)
        bs.broadcast(
            &base[(static_cast<std::size_t>(weights[i]) * n + i) * L], c1[i],
            live[i]);
      for (int j = 2; j <= k; ++j) {
        auto& out = vals[static_cast<std::size_t>(j)];
        std::fill(out.begin(), out.end(), 0);
        for (graph::VertexId i = 0; i < n; ++i) {
          for (graph::VertexId u : g.neighbors(i)) {
            const BS::Matrix sig = bs.matrix(sigma_coeff(
                f, opt.seed, round, i, u, static_cast<std::uint32_t>(j)));
            for (int j1 = 1; j1 <= j - 1; ++j1) {
              const auto& own = vals[static_cast<std::size_t>(j1)];
              const auto& oth = vals[static_cast<std::size_t>(j - j1)];
              for (std::uint32_t z = 0; z < width; ++z) {
                word acc[16] = {};
                word prod[16];
                bool any = false;
                for (std::uint32_t z1 = 0; z1 <= z; ++z1) {
                  const word* a =
                      &own[(static_cast<std::size_t>(z1) * n + i) * L];
                  if (bs.is_zero(a)) continue;
                  const word* b =
                      &oth[(static_cast<std::size_t>(z - z1) * n + u) * L];
                  if (bs.is_zero(b)) continue;
                  bs.mul(prod, a, b);
                  bs.add_into(acc, prod);
                  any = true;
                }
                if (any && !bs.is_zero(acc)) {
                  word scaled[16];
                  bs.mul_matrix(scaled, sig, acc);
                  bs.add_into(&out[(static_cast<std::size_t>(z) * n + i) * L],
                              scaled);
                }
              }
            }
          }
        }
      }
      // Size-j accumulators only fold iterations t < 2^j (see the scalar
      // kernel's comment); within this block that is a prefix lane mask.
      for (int j = 1; j <= k; ++j) {
        const std::uint64_t lim = std::uint64_t{1} << j;
        if (base_t >= lim) continue;
        const int lv = static_cast<int>(
            std::min<std::uint64_t>(lanes, lim - base_t));
        const word jmask =
            lv >= BS::kLanes ? ~word{0} : ((word{1} << lv) - 1);
        const auto& layer = vals[static_cast<std::size_t>(j)];
        auto& acc = accum[static_cast<std::size_t>(j)];
        for (std::uint32_t z = 0; z < width; ++z) {
          word sum[16] = {};
          for (graph::VertexId i = 0; i < n; ++i)
            bs.add_into(sum,
                        &layer[(static_cast<std::size_t>(z) * n + i) * L]);
          acc[z] = f.add(acc[z], static_cast<V>(bs.fold_xor(sum, jmask)));
        }
      }
    }
    for (int j = 1; j <= k; ++j)
      for (std::uint32_t z = 0; z < width; ++z)
        if (accum[static_cast<std::size_t>(j)][z] != f.zero())
          table.feasible[static_cast<std::size_t>(j)][z] = true;
    if (opt.watch_j > 0 && table.at(opt.watch_j, opt.watch_z)) break;
  }
}

}  // namespace detail_seq

/// Build the (size, weight) feasibility table for connected subgraphs of up
/// to `k` vertices, where vertex i contributes integer weight weights[i].
template <gf::GaloisField F>
FeasibilityTable detect_scan_seq(const graph::Graph& g,
                                 const std::vector<std::uint32_t>& weights,
                                 const ScanOptions& opt, const F& f = F{}) {
  const int k = opt.k;
  MIDAS_REQUIRE(k >= 1 && k <= 28, "k must be in [1,28]");
  const graph::VertexId n = g.num_vertices();
  MIDAS_REQUIRE(weights.size() == n, "one weight per vertex required");

  // Maximum achievable weight of a k-subset bounds the table width.
  std::uint32_t wmax = 0;
  {
    std::vector<std::uint32_t> sorted(weights);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (int i = 0; i < k && i < static_cast<int>(sorted.size()); ++i)
      wmax += sorted[static_cast<std::size_t>(i)];
  }

  FeasibilityTable table;
  table.k = k;
  table.max_weight = wmax;
  table.feasible.assign(static_cast<std::size_t>(k) + 1,
                        std::vector<bool>(wmax + 1, false));
  if (n == 0) return table;

  const bool bitsliced = detail_seq::use_bitsliced(f, opt.kernel);
  MIDAS_TRACE_SPAN(bitsliced ? "seq.scan.bitsliced" : "seq.scan.scalar",
                   {"k", k});
  if (bitsliced) {
    if constexpr (gf::Bitsliceable<F>) {
      detail_seq::scan_bitsliced(g, weights, opt, f, table);
      return table;
    }
  }
  detail_seq::scan_scalar(g, weights, opt, f, table);
  return table;
}

}  // namespace midas::core
