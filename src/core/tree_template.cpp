#include "core/tree_template.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/algorithms.hpp"
#include "util/require.hpp"

namespace midas::core {

using graph::Graph;
using graph::VertexId;

TreeDecomposition::TreeDecomposition(const Graph& tree, VertexId root) {
  const VertexId n = tree.num_vertices();
  MIDAS_REQUIRE(n >= 1, "template tree must be nonempty");
  MIDAS_REQUIRE(root < n, "root out of range");
  MIDAS_REQUIRE(tree.num_edges() == n - 1, "template must have n-1 edges");
  MIDAS_REQUIRE(graph::num_components(tree) == 1,
                "template must be connected");
  k_ = static_cast<int>(n);
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  subs_.reserve(2 * n - 1);
  decompose(tree, all, root);
  MIDAS_ASSERT(static_cast<int>(subs_.size()) == 2 * k_ - 1,
               "decomposition must yield 2k-1 subtemplates");
}

int TreeDecomposition::decompose(const Graph& tree,
                                 const std::vector<VertexId>& vertices,
                                 VertexId root) {
  if (vertices.size() == 1) {
    SubTemplate leaf;
    leaf.size = 1;
    leaf.template_vertex = root;
    subs_.push_back(leaf);
    return static_cast<int>(subs_.size()) - 1;
  }
  std::unordered_set<VertexId> members(vertices.begin(), vertices.end());
  // Pick u: the smallest neighbor of root inside this subtree.
  VertexId u = graph::kUnreachable;
  for (VertexId nbr : tree.neighbors(root)) {
    if (members.count(nbr)) {
      u = nbr;
      break;
    }
  }
  MIDAS_ASSERT(u != graph::kUnreachable,
               "root of a multi-vertex subtree has no neighbor in it");
  // H2 = component of u after removing edge (root, u), within the subtree.
  std::unordered_set<VertexId> h2{u};
  std::vector<VertexId> stack{u};
  while (!stack.empty()) {
    const VertexId x = stack.back();
    stack.pop_back();
    for (VertexId y : tree.neighbors(x)) {
      if (x == u && y == root) continue;  // the removed edge
      if (members.count(y) && !h2.count(y) && y != root) {
        h2.insert(y);
        stack.push_back(y);
      }
    }
  }
  std::vector<VertexId> h1_vertices, h2_vertices;
  for (VertexId v : vertices) {
    if (h2.count(v))
      h2_vertices.push_back(v);
    else
      h1_vertices.push_back(v);
  }
  const int id1 = decompose(tree, h1_vertices, root);
  const int id2 = decompose(tree, h2_vertices, u);
  SubTemplate node;
  node.size = static_cast<int>(vertices.size());
  node.child1 = id1;
  node.child2 = id2;
  node.template_vertex = root;
  subs_.push_back(node);
  return static_cast<int>(subs_.size()) - 1;
}

}  // namespace midas::core
