// The N / N1 / N2 scheduling arithmetic of MIDAS (paper Fig. 1, Table I).
//
// A run consists of `rounds` independent repetitions. Each round evaluates
// the polynomial for 2^k iterations. Iterations are grouped into *phases*
// of N2 consecutive iterations whose communication is batched into one
// message. The N ranks are split into a = N / N1 *phase groups* of N1 ranks
// each; group g processes phases g, g + a, g + 2a, ... so all groups finish
// within one phase of each other. A *batch* is one simultaneous wave of a
// phases (the paper's term); batches = ceil(phases / a).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace midas::core {

/// Number of independent rounds needed for failure probability <= epsilon,
/// given the per-round success probability of 1/5 (paper Theorem 1):
/// ceil(log(1/eps) / log(5/4)).
[[nodiscard]] inline int rounds_for_epsilon(double epsilon) {
  MIDAS_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  return static_cast<int>(
      std::ceil(std::log(1.0 / epsilon) / std::log(5.0 / 4.0)));
}

struct Schedule {
  int k = 0;             // subgraph size
  int rounds = 1;        // repetitions (epsilon driven)
  int n_ranks = 1;       // N
  int n1 = 1;            // ranks per phase group (graph parts)
  std::uint32_t n2 = 1;  // iterations per phase (batched communication)

  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return std::uint64_t{1} << k;
  }
  [[nodiscard]] int groups() const noexcept { return n_ranks / n1; }
  [[nodiscard]] std::uint64_t phases() const noexcept {
    return (iterations() + n2 - 1) / n2;
  }
  [[nodiscard]] std::uint64_t batches() const noexcept {
    const auto a = static_cast<std::uint64_t>(groups());
    return (phases() + a - 1) / a;
  }
  /// Number of phases assigned to group g (groups may differ by one when
  /// a does not divide the phase count).
  [[nodiscard]] std::uint64_t phases_of_group(int g) const noexcept {
    const auto a = static_cast<std::uint64_t>(groups());
    const auto p = phases();
    return p / a + ((static_cast<std::uint64_t>(g) < p % a) ? 1 : 0);
  }
  /// Iteration range [first, last) of phase number `t`.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> phase_range(
      std::uint64_t t) const noexcept {
    const std::uint64_t first = t * n2;
    const std::uint64_t last = std::min(iterations(), first + n2);
    return {first, last};
  }
};

/// Failover assignment (docs/RESILIENCE.md): the phases owned by dead
/// groups, enumerated in ascending phase order, are dealt round-robin to
/// the intact groups in ascending group order. Returns the extra phases
/// `my_group` must recompute. Purely arithmetic in the failure view, so
/// every rank that agrees on (dead_groups, intact_groups) derives the same
/// assignment — no coordination messages needed.
[[nodiscard]] inline std::vector<std::uint64_t> failover_phases(
    const Schedule& s, const std::vector<int>& dead_groups,
    const std::vector<int>& intact_groups, int my_group) {
  std::vector<std::uint64_t> mine;
  if (dead_groups.empty() || intact_groups.empty()) return mine;
  const auto it =
      std::find(intact_groups.begin(), intact_groups.end(), my_group);
  if (it == intact_groups.end()) return mine;
  const auto pos =
      static_cast<std::size_t>(it - intact_groups.begin());
  const auto a = static_cast<std::uint64_t>(s.groups());
  std::uint64_t dealt = 0;
  for (std::uint64_t p = 0; p < s.phases(); ++p) {
    const int owner = static_cast<int>(p % a);
    if (!std::binary_search(dead_groups.begin(), dead_groups.end(), owner))
      continue;
    if (dealt % intact_groups.size() == pos) mine.push_back(p);
    ++dealt;
  }
  return mine;
}

/// Validate and build a schedule. Unlike the paper's exposition (which
/// assumes N1 | N and N2 | 2^k), non-divisible configurations are accepted:
/// the last phase is short and groups take a near-equal share of phases.
[[nodiscard]] inline Schedule make_schedule(int k, double epsilon,
                                            int n_ranks, int n1,
                                            std::uint32_t n2) {
  MIDAS_REQUIRE(k >= 1 && k <= 28, "k must be in [1,28]");
  MIDAS_REQUIRE(n_ranks >= 1, "N must be positive");
  MIDAS_REQUIRE(n1 >= 1 && n1 <= n_ranks, "N1 must be in [1,N]");
  MIDAS_REQUIRE(n_ranks % n1 == 0, "N1 must divide N");
  MIDAS_REQUIRE(n2 >= 1, "N2 must be positive");
  Schedule s;
  s.k = k;
  s.rounds = rounds_for_epsilon(epsilon);
  s.n_ranks = n_ranks;
  s.n1 = n1;
  s.n2 = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(n2, s.iterations()));
  return s;
}

}  // namespace midas::core
