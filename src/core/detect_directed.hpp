// Directed k-path detection.
//
// Identical algebra to the undirected detector; the DP extends walks along
// in-edges (a directed walk ending at i came from an in-neighbor). Every
// directed simple path is a single witness — there is no direction pairing
// — but the per-(vertex, level) coefficients are still required to stop
// distinct paths over the same vertex set from cancelling each other.
#pragma once

#include "core/detect_seq.hpp"
#include "graph/digraph.hpp"

namespace midas::core {

/// Decide whether the digraph contains a directed simple path on exactly
/// k vertices. One-sided error as in Theorem 1.
template <gf::GaloisField F>
DetectResult detect_kpath_directed_seq(const graph::DiGraph& g,
                                       const DetectOptions& opt,
                                       const F& f = F{}) {
  const int k = opt.k;
  MIDAS_REQUIRE(k >= 1 && k <= 28, "k must be in [1,28]");
  const graph::VertexId n = g.num_vertices();
  DetectResult res;
  if (n == 0) return res;
  if (k == 1) {
    res.found = true;
    res.found_round = 0;
    return res;
  }

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  std::vector<std::uint32_t> v(n);
  std::vector<V> cur(n), next(n);
  std::vector<V> r(static_cast<std::size_t>(k) * n);

  for (int round = 0; round < opt.rounds(); ++round) {
    for (graph::VertexId i = 0; i < n; ++i) {
      v[i] = v_vector(opt.seed, round, i, k);
      for (int j = 1; j <= k; ++j)
        r[static_cast<std::size_t>(j - 1) * n + i] =
            field_coeff(f, opt.seed, round, i,
                        static_cast<std::uint32_t>(j));
    }
    V total = f.zero();
    for (std::uint64_t t = 0; t < iters; ++t) {
      for (graph::VertexId i = 0; i < n; ++i) {
        const bool live =
            !inner_product_odd(v[i], static_cast<std::uint32_t>(t));
        cur[i] = live ? r[i] : f.zero();
      }
      for (int j = 2; j <= k; ++j) {
        const V* rj = r.data() + static_cast<std::size_t>(j - 1) * n;
        for (graph::VertexId i = 0; i < n; ++i) {
          if (inner_product_odd(v[i], static_cast<std::uint32_t>(t))) {
            next[i] = f.zero();
            continue;
          }
          V acc = f.zero();
          for (graph::VertexId u : g.in_neighbors(i))
            acc = f.add(acc, cur[u]);
          next[i] = f.mul(rj[i], acc);
        }
        std::swap(cur, next);
      }
      V sum = f.zero();
      for (graph::VertexId i = 0; i < n; ++i) sum = f.add(sum, cur[i]);
      total = f.add(total, sum);
      ++res.iterations;
    }
    ++res.rounds_run;
    if (total != f.zero()) {
      res.found = true;
      res.found_round = round;
      if (opt.early_exit) return res;
    }
  }
  return res;
}

}  // namespace midas::core
