// Weighted extensions (paper Problem 3, part 2: "the maximum weight of any
// multilinear term" — and the weighted k-path variant mentioned under
// Problem 1).
//
// The path polynomial is augmented with a weight dimension, exactly like
// the scan-statistics DP but with the path's linear structure: P(i, j, z)
// sums walks of length j ending at i whose vertex weights total z. The
// maximum z with a surviving degree-k multilinear term is the maximum
// weight of a simple k-path, with the usual one-sided error.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/detect_seq.hpp"
#include "gf/field.hpp"
#include "graph/csr.hpp"
#include "util/require.hpp"

namespace midas::core {

struct WeightedPathResult {
  /// Achievable total weights of simple k-paths ("true" is always correct).
  std::vector<bool> feasible_weight;
  /// Maximum achievable weight, if any k-path was detected.
  std::optional<std::uint32_t> max_weight;
};

/// Detect the achievable (and maximum) total vertex weight over simple
/// k-vertex paths. Weights must be small integers (use scan::round_weights
/// for real-valued inputs).
template <gf::GaloisField F>
WeightedPathResult max_weight_kpath_seq(
    const graph::Graph& g, const std::vector<std::uint32_t>& weights, int k,
    const DetectOptions& opt, const F& f = F{}) {
  MIDAS_REQUIRE(k >= 1 && k <= 24, "k must be in [1,24]");
  const graph::VertexId n = g.num_vertices();
  MIDAS_REQUIRE(weights.size() == n, "one weight per vertex required");

  std::uint32_t wmax = 0;
  {
    std::vector<std::uint32_t> sorted(weights);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (int i = 0; i < k && i < static_cast<int>(sorted.size()); ++i)
      wmax += sorted[static_cast<std::size_t>(i)];
  }
  const std::uint32_t width = wmax + 1;

  WeightedPathResult res;
  res.feasible_weight.assign(width, false);
  if (n == 0) return res;

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  std::vector<std::uint32_t> v(n);
  // cur[z * n + i] = P(i, j, z) at the current level.
  std::vector<V> cur(static_cast<std::size_t>(width) * n);
  std::vector<V> next(static_cast<std::size_t>(width) * n);
  std::vector<V> accum(width);

  for (int round = 0; round < opt.rounds(); ++round) {
    for (graph::VertexId i = 0; i < n; ++i)
      v[i] = v_vector(opt.seed, round, i, k);
    std::fill(accum.begin(), accum.end(), f.zero());

    for (std::uint64_t t = 0; t < iters; ++t) {
      std::fill(cur.begin(), cur.end(), f.zero());
      for (graph::VertexId i = 0; i < n; ++i) {
        if (!inner_product_odd(v[i], static_cast<std::uint32_t>(t)))
          cur[static_cast<std::size_t>(weights[i]) * n + i] =
              field_coeff(f, opt.seed, round, i, 1);
      }
      for (int j = 2; j <= k; ++j) {
        std::fill(next.begin(), next.end(), f.zero());
        for (graph::VertexId i = 0; i < n; ++i) {
          if (inner_product_odd(v[i], static_cast<std::uint32_t>(t)))
            continue;
          const V rj =
              field_coeff(f, opt.seed, round, i,
                          static_cast<std::uint32_t>(j));
          const std::uint32_t wi = weights[i];
          for (std::uint32_t z = wi; z < width; ++z) {
            V acc = f.zero();
            const V* prev =
                cur.data() + static_cast<std::size_t>(z - wi) * n;
            for (graph::VertexId u : g.neighbors(i))
              acc = f.add(acc, prev[u]);
            if (acc != f.zero())
              next[static_cast<std::size_t>(z) * n + i] = f.mul(rj, acc);
          }
        }
        std::swap(cur, next);
      }
      for (std::uint32_t z = 0; z < width; ++z) {
        V sum = f.zero();
        const V* row = cur.data() + static_cast<std::size_t>(z) * n;
        for (graph::VertexId i = 0; i < n; ++i) sum = f.add(sum, row[i]);
        accum[z] = f.add(accum[z], sum);
      }
    }
    for (std::uint32_t z = 0; z < width; ++z)
      if (accum[z] != f.zero()) res.feasible_weight[z] = true;
  }
  for (std::uint32_t z = 0; z < width; ++z)
    if (res.feasible_weight[z]) res.max_weight = z;
  return res;
}

/// Symmetric integer edge weights for a graph, defaulting to
/// `default_weight` for unset edges.
class EdgeWeights {
 public:
  explicit EdgeWeights(std::uint32_t default_weight = 1)
      : default_(default_weight) {}

  void set(graph::VertexId u, graph::VertexId v, std::uint32_t w) {
    map_[key(u, v)] = w;
  }
  [[nodiscard]] std::uint32_t get(graph::VertexId u,
                                  graph::VertexId v) const {
    const auto it = map_.find(key(u, v));
    return it == map_.end() ? default_ : it->second;
  }
  [[nodiscard]] std::uint32_t max_weight() const {
    std::uint32_t w = default_;
    for (const auto& [_, x] : map_) w = std::max(w, x);
    return w;
  }

 private:
  static std::uint64_t key(graph::VertexId u, graph::VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  std::uint32_t default_;
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
};

/// Detect the achievable (and maximum) total *edge* weight over simple
/// k-vertex paths (k-1 edges) — the "maximum weight embedding in a
/// weighted version of the graph" variant of Problem 1.
template <gf::GaloisField F>
WeightedPathResult max_edge_weight_kpath_seq(const graph::Graph& g,
                                             const EdgeWeights& weights,
                                             int k, const DetectOptions& opt,
                                             const F& f = F{}) {
  MIDAS_REQUIRE(k >= 1 && k <= 24, "k must be in [1,24]");
  const graph::VertexId n = g.num_vertices();

  const std::uint32_t wmax =
      static_cast<std::uint32_t>(k - 1) * weights.max_weight();
  const std::uint32_t width = wmax + 1;

  WeightedPathResult res;
  res.feasible_weight.assign(width, false);
  if (n == 0) return res;

  using V = typename F::value_type;
  const std::uint64_t iters = std::uint64_t{1} << k;
  std::vector<std::uint32_t> v(n);
  std::vector<V> cur(static_cast<std::size_t>(width) * n);
  std::vector<V> next(static_cast<std::size_t>(width) * n);
  std::vector<V> accum(width);

  for (int round = 0; round < opt.rounds(); ++round) {
    for (graph::VertexId i = 0; i < n; ++i)
      v[i] = v_vector(opt.seed, round, i, k);
    std::fill(accum.begin(), accum.end(), f.zero());

    for (std::uint64_t t = 0; t < iters; ++t) {
      std::fill(cur.begin(), cur.end(), f.zero());
      // Single vertex: zero edges, zero weight.
      for (graph::VertexId i = 0; i < n; ++i) {
        if (!inner_product_odd(v[i], static_cast<std::uint32_t>(t)))
          cur[i] = field_coeff(f, opt.seed, round, i, 1);
      }
      for (int j = 2; j <= k; ++j) {
        std::fill(next.begin(), next.end(), f.zero());
        for (graph::VertexId i = 0; i < n; ++i) {
          if (inner_product_odd(v[i], static_cast<std::uint32_t>(t)))
            continue;
          const V rj = field_coeff(f, opt.seed, round, i,
                                   static_cast<std::uint32_t>(j));
          for (graph::VertexId u : g.neighbors(i)) {
            const std::uint32_t we = weights.get(u, i);
            for (std::uint32_t z = we; z < width; ++z) {
              const V val = cur[static_cast<std::size_t>(z - we) * n + u];
              if (val == f.zero()) continue;
              auto& cell = next[static_cast<std::size_t>(z) * n + i];
              cell = f.add(cell, f.mul(rj, val));
            }
          }
        }
        std::swap(cur, next);
      }
      for (std::uint32_t z = 0; z < width; ++z) {
        V sum = f.zero();
        const V* row = cur.data() + static_cast<std::size_t>(z) * n;
        for (graph::VertexId i = 0; i < n; ++i) sum = f.add(sum, row[i]);
        accum[z] = f.add(accum[z], sum);
      }
    }
    for (std::uint32_t z = 0; z < width; ++z)
      if (accum[z] != f.zero()) res.feasible_weight[z] = true;
  }
  for (std::uint32_t z = 0; z < width; ++z)
    if (res.feasible_weight[z]) res.max_weight = z;
  return res;
}

}  // namespace midas::core
