#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/require.hpp"

namespace midas::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  MIDAS_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<VertexId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<VertexId> connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> label(n, kUnreachable);
  VertexId next = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (label[s] != kUnreachable) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : g.neighbors(u)) {
        if (label[v] == kUnreachable) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

VertexId num_components(const Graph& g) {
  const auto labels = connected_components(g);
  return labels.empty() ? 0 : *std::max_element(labels.begin(), labels.end()) + 1;
}

bool is_connected_subset(const Graph& g,
                         const std::vector<VertexId>& subset) {
  if (subset.empty()) return false;
  std::unordered_set<VertexId> members(subset.begin(), subset.end());
  std::unordered_set<VertexId> visited{subset[0]};
  std::vector<VertexId> stack{subset[0]};
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (VertexId v : g.neighbors(u)) {
      if (members.count(v) && !visited.count(v)) {
        visited.insert(v);
        stack.push_back(v);
      }
    }
  }
  return visited.size() == members.size();
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices) {
  InducedSubgraph out;
  out.to_original = vertices;
  std::sort(out.to_original.begin(), out.to_original.end());
  out.to_original.erase(
      std::unique(out.to_original.begin(), out.to_original.end()),
      out.to_original.end());
  std::unordered_set<VertexId> members(out.to_original.begin(),
                                       out.to_original.end());
  std::vector<VertexId> new_id(g.num_vertices(), kUnreachable);
  for (VertexId i = 0; i < out.to_original.size(); ++i)
    new_id[out.to_original[i]] = i;
  GraphBuilder b(static_cast<VertexId>(out.to_original.size()));
  for (VertexId u : out.to_original) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v && members.count(v)) b.add_edge(new_id[u], new_id[v]);
    }
  }
  out.graph = b.build();
  return out;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const auto d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += d;
  }
  s.mean /= n;
  return s;
}

}  // namespace midas::graph
