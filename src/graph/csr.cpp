#include "graph/csr.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace midas::graph {

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t d = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) d = std::max(d, degree(v));
  return d;
}

std::vector<std::pair<VertexId, VertexId>> Graph::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

GraphBuilder::GraphBuilder(VertexId n) : n_(n) {}

void GraphBuilder::reserve(EdgeId m) { edges_.reserve(m); }

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  MIDAS_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() {
  // Symmetrize: store both directions, dropping self-loops.
  std::vector<std::pair<VertexId, VertexId>> directed;
  directed.reserve(edges_.size() * 2);
  for (auto [u, v] : edges_) {
    if (u == v) continue;
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [u, v] : directed) g.offsets_[u + 1]++;
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.reserve(directed.size());
  for (auto [u, v] : directed) g.adjacency_.push_back(v);
  return g;
}

}  // namespace midas::graph
