// Edge-list I/O.
//
// Text format: one "u v" pair per line; lines starting with '#' or '%' are
// comments (SNAP / Matrix-Market-edge conventions). Vertex ids must be
// non-negative; the graph size is max id + 1 unless an explicit n is given.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace midas::graph {

/// A malformed, overflowing or otherwise invalid graph input. Derives from
/// std::invalid_argument (bad input is a contract violation, like
/// MIDAS_REQUIRE) but adds the source name and — for text inputs — the
/// 1-based line number of the offending record (0 for binary/header
/// errors), so operators can fix the file instead of guessing.
class GraphParseError : public std::invalid_argument {
 public:
  GraphParseError(const std::string& source, std::uint64_t line,
                  const std::string& what)
      : std::invalid_argument(format(source, line, what)), line_(line) {}

  /// 1-based line of the bad record; 0 when the error is not line-scoped.
  [[nodiscard]] std::uint64_t line() const noexcept { return line_; }

 private:
  static std::string format(const std::string& source, std::uint64_t line,
                            const std::string& what) {
    std::string s = "graph parse error [";
    s += source;
    if (line > 0) {
      s += ':';
      s += std::to_string(line);
    }
    s += "]: ";
    s += what;
    return s;
  }

  std::uint64_t line_;
};

/// Parse an edge list from a stream. If n_hint > 0, the vertex count is
/// fixed to n_hint (ids must be < n_hint); otherwise inferred. Throws
/// GraphParseError on malformed lines, negative or overflowing vertex ids,
/// or ids outside n_hint; `source` names the input in error messages.
[[nodiscard]] Graph read_edge_list(std::istream& in, VertexId n_hint = 0,
                                   const std::string& source = "<stream>");

/// Load from a file path. Throws std::runtime_error if unreadable.
[[nodiscard]] Graph load_edge_list(const std::string& path,
                                   VertexId n_hint = 0);

/// Write "u v" lines (u < v once per undirected edge).
void write_edge_list(const Graph& g, std::ostream& out);

/// Save to a file path. Throws std::runtime_error if unwritable.
void save_edge_list(const Graph& g, const std::string& path);

/// Compact binary format ("MIDASGR1" magic, little-endian u64 n/m, then m
/// u32 edge pairs). ~5x smaller and ~20x faster to load than text for
/// large graphs. load_binary throws GraphParseError on a bad magic, a
/// header whose edge count exceeds what the file can hold (so a corrupt
/// count cannot trigger a giant allocation), out-of-range vertex ids, or
/// truncation.
void save_binary(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_binary(const std::string& path);

}  // namespace midas::graph
