// Edge-list I/O.
//
// Text format: one "u v" pair per line; lines starting with '#' or '%' are
// comments (SNAP / Matrix-Market-edge conventions). Vertex ids must be
// non-negative; the graph size is max id + 1 unless an explicit n is given.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace midas::graph {

/// Parse an edge list from a stream. If n_hint > 0, the vertex count is
/// fixed to n_hint (ids must be < n_hint); otherwise inferred.
[[nodiscard]] Graph read_edge_list(std::istream& in, VertexId n_hint = 0);

/// Load from a file path. Throws std::runtime_error if unreadable.
[[nodiscard]] Graph load_edge_list(const std::string& path,
                                   VertexId n_hint = 0);

/// Write "u v" lines (u < v once per undirected edge).
void write_edge_list(const Graph& g, std::ostream& out);

/// Save to a file path. Throws std::runtime_error if unwritable.
void save_edge_list(const Graph& g, const std::string& path);

/// Compact binary format ("MIDASGR1" magic, little-endian u64 n/m, then m
/// u32 edge pairs). ~5x smaller and ~20x faster to load than text for
/// large graphs.
void save_binary(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_binary(const std::string& path);

}  // namespace midas::graph
