#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace midas::graph {

Graph read_edge_list(std::istream& in, VertexId n_hint,
                     const std::string& source) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  constexpr long long kMaxId = 0xFFFFFFFFll;
  VertexId max_id = 0;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long u = -1, v = -1;
    if (!(ls >> u >> v))
      throw GraphParseError(source, lineno,
                            "malformed edge-list line: \"" + line + "\"");
    if (u < 0 || v < 0)
      throw GraphParseError(source, lineno,
                            "negative vertex id in: \"" + line + "\"");
    if (u > kMaxId || v > kMaxId)
      throw GraphParseError(source, lineno,
                            "vertex id overflows 32 bits in: \"" + line +
                                "\"");
    if (n_hint > 0 && (u >= static_cast<long long>(n_hint) ||
                       v >= static_cast<long long>(n_hint)))
      throw GraphParseError(
          source, lineno,
          "vertex id >= declared vertex count " + std::to_string(n_hint) +
              " in: \"" + line + "\"");
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    max_id = std::max({max_id, static_cast<VertexId>(u),
                       static_cast<VertexId>(v)});
  }
  if (in.bad())
    throw std::runtime_error("I/O error while reading " + source);
  const VertexId n = n_hint > 0 ? n_hint : (edges.empty() ? 0 : max_id + 1);
  GraphBuilder b(n);
  b.reserve(edges.size());
  for (auto [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph load_edge_list(const std::string& path, VertexId n_hint) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open graph file: " + path);
  return read_edge_list(f, n_hint, path);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  for (auto [u, v] : g.edge_list()) out << u << ' ' << v << '\n';
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write graph file: " + path);
  write_edge_list(g, f);
}

namespace {
constexpr char kBinaryMagic[8] = {'M', 'I', 'D', 'A', 'S', 'G', 'R', '1'};
}  // namespace

void save_binary(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot write graph file: " + path);
  f.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (auto [u, v] : g.edge_list()) {
    f.write(reinterpret_cast<const char*>(&u), sizeof(u));
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  MIDAS_REQUIRE(static_cast<bool>(f), "short write to " + path);
}

Graph load_binary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open graph file: " + path);
  // File size first: the header's edge count is validated against it below
  // before any allocation, so a corrupt count cannot ask for gigabytes.
  f.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(0, std::ios::beg);
  char magic[8];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
    throw GraphParseError(path, 0, "not a MIDAS binary graph file");
  std::uint64_t n = 0, m = 0;
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  f.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!f) throw GraphParseError(path, 0, "truncated binary graph header");
  if (n > 0xFFFFFFFFull)
    throw GraphParseError(path, 0,
                          "vertex count " + std::to_string(n) +
                              " overflows 32 bits");
  const std::uint64_t header_bytes = sizeof(kBinaryMagic) + 2 * sizeof(n);
  const std::uint64_t edge_bytes = 2 * sizeof(VertexId);
  if (m > (file_size - std::min(file_size, header_bytes)) / edge_bytes)
    throw GraphParseError(
        path, 0,
        "edge count " + std::to_string(m) +
            " exceeds what the file can hold (corrupt header?)");
  GraphBuilder b(static_cast<VertexId>(n));
  b.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    f.read(reinterpret_cast<char*>(&u), sizeof(u));
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!f)
      throw GraphParseError(path, 0,
                            "truncated binary graph at edge " +
                                std::to_string(e) + " of " +
                                std::to_string(m));
    if (u >= n || v >= n)
      throw GraphParseError(path, 0,
                            "edge " + std::to_string(e) +
                                " references vertex id out of range");
    b.add_edge(u, v);
  }
  return b.build();
}

}  // namespace midas::graph
