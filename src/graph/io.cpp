#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace midas::graph {

Graph read_edge_list(std::istream& in, VertexId n_hint) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long u = -1, v = -1;
    const bool parsed = static_cast<bool>(ls >> u >> v);
    MIDAS_REQUIRE(parsed && u >= 0 && v >= 0,
                  "malformed edge-list line: " + line);
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    max_id = std::max({max_id, static_cast<VertexId>(u),
                       static_cast<VertexId>(v)});
  }
  const VertexId n = n_hint > 0 ? n_hint : (edges.empty() ? 0 : max_id + 1);
  GraphBuilder b(n);
  b.reserve(edges.size());
  for (auto [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph load_edge_list(const std::string& path, VertexId n_hint) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open graph file: " + path);
  return read_edge_list(f, n_hint);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  for (auto [u, v] : g.edge_list()) out << u << ' ' << v << '\n';
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write graph file: " + path);
  write_edge_list(g, f);
}

namespace {
constexpr char kBinaryMagic[8] = {'M', 'I', 'D', 'A', 'S', 'G', 'R', '1'};
}  // namespace

void save_binary(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot write graph file: " + path);
  f.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (auto [u, v] : g.edge_list()) {
    f.write(reinterpret_cast<const char*>(&u), sizeof(u));
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  MIDAS_REQUIRE(static_cast<bool>(f), "short write to " + path);
}

Graph load_binary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open graph file: " + path);
  char magic[8];
  f.read(magic, sizeof(magic));
  MIDAS_REQUIRE(static_cast<bool>(f) &&
                    std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0,
                "not a MIDAS binary graph file: " + path);
  std::uint64_t n = 0, m = 0;
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  f.read(reinterpret_cast<char*>(&m), sizeof(m));
  MIDAS_REQUIRE(static_cast<bool>(f) && n <= 0xFFFFFFFFull,
                "corrupt binary graph header: " + path);
  GraphBuilder b(static_cast<VertexId>(n));
  b.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    f.read(reinterpret_cast<char*>(&u), sizeof(u));
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    MIDAS_REQUIRE(static_cast<bool>(f), "truncated binary graph: " + path);
    b.add_edge(u, v);
  }
  return b.build();
}

}  // namespace midas::graph
