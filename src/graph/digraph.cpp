#include "graph/digraph.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/require.hpp"

namespace midas::graph {

bool DiGraph::has_edge(VertexId from, VertexId to) const noexcept {
  const auto nbrs = out_neighbors(from);
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

std::vector<std::pair<VertexId, VertexId>> DiGraph::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v)
    for (VertexId u : out_neighbors(v)) edges.emplace_back(v, u);
  return edges;
}

DiGraphBuilder::DiGraphBuilder(VertexId n) : n_(n) {}

void DiGraphBuilder::add_edge(VertexId from, VertexId to) {
  MIDAS_REQUIRE(from < n_ && to < n_, "edge endpoint out of range");
  edges_.emplace_back(from, to);
}

DiGraph DiGraphBuilder::build() {
  std::vector<std::pair<VertexId, VertexId>> fwd;
  fwd.reserve(edges_.size());
  for (auto [a, b] : edges_) {
    if (a != b) fwd.emplace_back(a, b);
  }
  edges_.clear();
  std::sort(fwd.begin(), fwd.end());
  fwd.erase(std::unique(fwd.begin(), fwd.end()), fwd.end());

  DiGraph g;
  g.out_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  g.in_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [a, b] : fwd) {
    g.out_offsets_[a + 1]++;
    g.in_offsets_[b + 1]++;
  }
  for (std::size_t i = 1; i < g.out_offsets_.size(); ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_adj_.resize(fwd.size());
  g.in_adj_.resize(fwd.size());
  std::vector<EdgeId> out_cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<EdgeId> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (auto [a, b] : fwd) {
    g.out_adj_[out_cursor[a]++] = b;
    g.in_adj_[in_cursor[b]++] = a;
  }
  // in_adj built from edges sorted by source, so per-target lists need a
  // sort to be binary-searchable/canonical.
  for (VertexId v = 0; v < n_; ++v)
    std::sort(g.in_adj_.begin() + static_cast<long>(g.in_offsets_[v]),
              g.in_adj_.begin() + static_cast<long>(g.in_offsets_[v + 1]));
  return g;
}

DiGraph to_digraph(const Graph& g) {
  DiGraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId u : g.neighbors(v)) b.add_edge(v, u);
  return b.build();
}

DiGraph random_digraph(VertexId n, EdgeId m, Xoshiro256& rng) {
  MIDAS_REQUIRE(n >= 2, "random_digraph requires n >= 2");
  const auto max_edges = static_cast<EdgeId>(n) * (n - 1);
  MIDAS_REQUIRE(m <= max_edges, "too many directed edges requested");
  DiGraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto a = static_cast<VertexId>(rng.below(n));
    const auto c = static_cast<VertexId>(rng.below(n));
    if (a == c) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | c;
    if (seen.insert(key).second) b.add_edge(a, c);
  }
  return b.build();
}

DiGraph directed_path(VertexId n) {
  DiGraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

DiGraph directed_cycle(VertexId n) {
  MIDAS_REQUIRE(n >= 2, "directed cycle requires n >= 2");
  DiGraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

}  // namespace midas::graph
