// Synthetic graph generators.
//
// These supply the structural analogs of the paper's datasets (Table II):
//   - erdos_renyi_gnm with m = n ln n     ->  random-1e6 / random-1e7
//   - barabasi_albert                      ->  com-Orkut (heavy-tailed social)
//   - road_network (jittered lattice)      ->  miami (planar road mesh)
// plus standard shapes (path, cycle, star, complete, grid, random tree,
// R-MAT) used by tests and by the tree-template workloads.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace midas::graph {

/// G(n, m): n vertices and exactly m distinct undirected edges, uniform over
/// all simple graphs with those parameters (rejection sampling).
[[nodiscard]] Graph erdos_renyi_gnm(VertexId n, EdgeId m, Xoshiro256& rng);

/// G(n, p): each of the n-choose-2 edges present independently with
/// probability p. Uses geometric skipping, O(n + m) expected time.
[[nodiscard]] Graph erdos_renyi_gnp(VertexId n, double p, Xoshiro256& rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree. Produces the
/// heavy-tailed degree distribution of social networks like com-Orkut.
[[nodiscard]] Graph barabasi_albert(VertexId n, std::uint32_t attach,
                                    Xoshiro256& rng);

/// Road-network analog: vertices on a jittered sqrt(n) x sqrt(n) lattice,
/// edges to the 4 lattice neighbors each kept with probability `keep`, plus
/// a few random "highway" shortcuts. Planar-ish, low max degree, large
/// diameter — the structural profile of the miami dataset.
[[nodiscard]] Graph road_network(VertexId n, double keep, Xoshiro256& rng);

/// R-MAT (Chakrabarti et al.) recursive-matrix generator; partition
/// probabilities (a, b, c) with d = 1 - a - b - c. Duplicate edges dropped.
[[nodiscard]] Graph rmat(VertexId scale, EdgeId edges_per_vertex, double a,
                         double b, double c, Xoshiro256& rng);

/// Uniform random labeled tree on n vertices (Prüfer sequence).
[[nodiscard]] Graph random_tree(VertexId n, Xoshiro256& rng);

/// Deterministic shapes.
[[nodiscard]] Graph path_graph(VertexId n);
[[nodiscard]] Graph cycle_graph(VertexId n);
[[nodiscard]] Graph star_graph(VertexId n);
[[nodiscard]] Graph complete_graph(VertexId n);
[[nodiscard]] Graph grid_graph(VertexId rows, VertexId cols);

}  // namespace midas::graph
