#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/require.hpp"

namespace midas::graph {

namespace {

/// Pack an undirected edge into one key for dedup during generation.
std::uint64_t edge_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph erdos_renyi_gnm(VertexId n, EdgeId m, Xoshiro256& rng) {
  MIDAS_REQUIRE(n >= 2, "G(n,m) requires n >= 2");
  const auto max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  MIDAS_REQUIRE(m <= max_edges, "G(n,m): m exceeds n choose 2");
  GraphBuilder b(n);
  b.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph erdos_renyi_gnp(VertexId n, double p, Xoshiro256& rng) {
  MIDAS_REQUIRE(n >= 1, "G(n,p) requires n >= 1");
  MIDAS_REQUIRE(p >= 0.0 && p <= 1.0, "G(n,p) requires p in [0,1]");
  GraphBuilder b(n);
  if (p <= 0.0) return b.build();
  if (p >= 1.0) return complete_graph(n);
  // Geometric skipping over the lexicographic edge enumeration.
  const double log1mp = std::log1p(-p);
  std::uint64_t v = 1, w = static_cast<std::uint64_t>(-1);
  while (v < n) {
    const double r = std::max(rng.uniform(), 1e-300);
    w += 1 + static_cast<std::uint64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n)
      b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
  }
  return b.build();
}

Graph barabasi_albert(VertexId n, std::uint32_t attach, Xoshiro256& rng) {
  MIDAS_REQUIRE(attach >= 1, "BA requires attach >= 1");
  MIDAS_REQUIRE(n > attach, "BA requires n > attach");
  GraphBuilder b(n);
  // repeated_targets holds every edge endpoint once per incidence, so a
  // uniform draw from it is a degree-proportional draw.
  std::vector<VertexId> repeated_targets;
  repeated_targets.reserve(static_cast<std::size_t>(n) * attach * 2);
  // Seed: a small clique on attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      b.add_edge(u, v);
      repeated_targets.push_back(u);
      repeated_targets.push_back(v);
    }
  }
  for (VertexId v = attach + 1; v < n; ++v) {
    std::unordered_set<VertexId> chosen;
    while (chosen.size() < attach) {
      const VertexId t =
          repeated_targets[rng.below(repeated_targets.size())];
      chosen.insert(t);
    }
    for (VertexId t : chosen) {
      b.add_edge(v, t);
      repeated_targets.push_back(v);
      repeated_targets.push_back(t);
    }
  }
  return b.build();
}

Graph road_network(VertexId n, double keep, Xoshiro256& rng) {
  MIDAS_REQUIRE(n >= 4, "road_network requires n >= 4");
  MIDAS_REQUIRE(keep > 0.0 && keep <= 1.0, "keep must be in (0,1]");
  const auto side = static_cast<VertexId>(std::ceil(std::sqrt(double(n))));
  GraphBuilder b(n);
  auto id = [side](VertexId r, VertexId c) { return r * side + c; };
  for (VertexId r = 0; r < side; ++r) {
    for (VertexId c = 0; c < side; ++c) {
      const VertexId u = id(r, c);
      if (u >= n) continue;
      if (c + 1 < side && id(r, c + 1) < n && rng.bernoulli(keep))
        b.add_edge(u, id(r, c + 1));
      if (r + 1 < side && id(r + 1, c) < n && rng.bernoulli(keep))
        b.add_edge(u, id(r + 1, c));
    }
  }
  // Sparse long-range "highways": ~n/100 shortcuts.
  const EdgeId highways = std::max<EdgeId>(1, n / 100);
  for (EdgeId i = 0; i < highways; ++i) {
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    if (u != v) b.add_edge(u, v);
  }
  return b.build();
}

Graph rmat(VertexId scale, EdgeId edges_per_vertex, double a, double b,
           double c, Xoshiro256& rng) {
  MIDAS_REQUIRE(scale >= 1 && scale <= 30, "rmat scale in [1,30]");
  const double d = 1.0 - a - b - c;
  MIDAS_REQUIRE(a >= 0 && b >= 0 && c >= 0 && d >= 0,
                "rmat probabilities must be a valid distribution");
  const VertexId n = VertexId{1} << scale;
  const EdgeId m = static_cast<EdgeId>(n) * edges_per_vertex;
  GraphBuilder builder(n);
  builder.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    VertexId u = 0, v = 0;
    for (VertexId bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph random_tree(VertexId n, Xoshiro256& rng) {
  MIDAS_REQUIRE(n >= 1, "random_tree requires n >= 1");
  GraphBuilder b(n);
  if (n == 1) return b.build();
  if (n == 2) {
    b.add_edge(0, 1);
    return b.build();
  }
  // Prüfer decoding: uniform over all n^(n-2) labeled trees.
  std::vector<VertexId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<VertexId>(rng.below(n));
  std::vector<std::uint32_t> degree(n, 1);
  for (VertexId x : prufer) degree[x]++;
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < n; ++v)
    if (degree[v] == 1) leaves.push_back(v);
  std::make_heap(leaves.begin(), leaves.end(), std::greater<>());
  for (VertexId x : prufer) {
    std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
    const VertexId leaf = leaves.back();
    leaves.pop_back();
    b.add_edge(leaf, x);
    if (--degree[x] == 1) {
      leaves.push_back(x);
      std::push_heap(leaves.begin(), leaves.end(), std::greater<>());
    }
  }
  std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
  const VertexId u = leaves.back();
  leaves.pop_back();
  b.add_edge(u, leaves.front());
  return b.build();
}

Graph path_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle_graph(VertexId n) {
  MIDAS_REQUIRE(n >= 3, "cycle requires n >= 3");
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph star_graph(VertexId n) {
  MIDAS_REQUIRE(n >= 2, "star requires n >= 2");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph complete_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph grid_graph(VertexId rows, VertexId cols) {
  MIDAS_REQUIRE(rows >= 1 && cols >= 1, "grid requires positive dims");
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

}  // namespace midas::graph
