// Basic graph algorithms shared by partitioners, tests, and workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace midas::graph {

/// BFS distances from `source`; unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       VertexId source);

/// Connected component label per vertex (labels are 0-based and dense).
[[nodiscard]] std::vector<VertexId> connected_components(const Graph& g);

/// Number of connected components.
[[nodiscard]] VertexId num_components(const Graph& g);

/// True if the vertex subset induces a connected subgraph (empty = false,
/// singleton = true).
[[nodiscard]] bool is_connected_subset(const Graph& g,
                                       const std::vector<VertexId>& subset);

/// Induced subgraph on `vertices` (need not be sorted; duplicates ignored).
/// Returns the subgraph plus the mapping from new ids to original ids.
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> to_original;  // new id -> original id
};
[[nodiscard]] InducedSubgraph induced_subgraph(
    const Graph& g, const std::vector<VertexId>& vertices);

/// Degree distribution summary.
struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace midas::graph
