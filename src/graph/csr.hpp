// Compressed sparse row (CSR) graph.
//
// All MIDAS algorithms consume undirected simple graphs in CSR form:
// adjacency of vertex v is the contiguous range neighbors(v). Construction
// goes through GraphBuilder, which symmetrizes, sorts, and deduplicates the
// edge list and strips self-loops, so a constructed Graph is always a simple
// undirected graph with sorted adjacency.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace midas::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

class Graph {
 public:
  Graph() = default;

  /// Number of vertices.
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges (each stored twice internally).
  [[nodiscard]] EdgeId num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Degree of v.
  [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Binary-search adjacency; O(log deg(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  /// Maximum degree over all vertices (0 for the empty graph).
  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// All undirected edges as (u, v) pairs with u < v, in sorted order.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edge_list() const;

 private:
  friend class GraphBuilder;
  std::vector<EdgeId> offsets_;      // size n+1
  std::vector<VertexId> adjacency_;  // size 2m, sorted per vertex
};

/// Accumulates an edge list and produces a canonical Graph.
class GraphBuilder {
 public:
  /// n is the (fixed) number of vertices; edges outside [0, n) are rejected.
  explicit GraphBuilder(VertexId n);

  /// Add an undirected edge. Self-loops and duplicates are tolerated here
  /// and removed in build().
  void add_edge(VertexId u, VertexId v);

  /// Reserve space for `m` undirected edges.
  void reserve(EdgeId m);

  /// Number of edges added so far (before dedup).
  [[nodiscard]] EdgeId pending_edges() const noexcept {
    return edges_.size();
  }

  /// Produce the canonical CSR graph; the builder is left empty.
  [[nodiscard]] Graph build();

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace midas::graph
