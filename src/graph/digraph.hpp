// Directed graphs in dual-CSR form (out- and in-adjacency).
//
// The k-path reduction extends verbatim to digraphs: a directed walk
// ending at i extends a walk ending at an in-neighbor of i, so the DP
// consumes in-neighbors. Directed witnesses have a single orientation —
// historically the setting Williams' algorithm was stated in.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace midas::graph {

class DiGraph {
 public:
  DiGraph() = default;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }
  /// Number of directed edges.
  [[nodiscard]] EdgeId num_edges() const noexcept { return out_adj_.size(); }

  [[nodiscard]] std::span<const VertexId> out_neighbors(
      VertexId v) const noexcept {
    return {out_adj_.data() + out_offsets_[v],
            out_adj_.data() + out_offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const VertexId> in_neighbors(
      VertexId v) const noexcept {
    return {in_adj_.data() + in_offsets_[v],
            in_adj_.data() + in_offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t out_degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }
  /// Binary-search the out-adjacency.
  [[nodiscard]] bool has_edge(VertexId from, VertexId to) const noexcept;

  /// Directed edges (from, to) in sorted order.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edge_list() const;

 private:
  friend class DiGraphBuilder;
  std::vector<EdgeId> out_offsets_, in_offsets_;
  std::vector<VertexId> out_adj_, in_adj_;
};

/// Accumulates directed edges; build() deduplicates, sorts, and drops
/// self-loops.
class DiGraphBuilder {
 public:
  explicit DiGraphBuilder(VertexId n);
  void add_edge(VertexId from, VertexId to);
  [[nodiscard]] DiGraph build();

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// The symmetric closure viewed as a digraph (u->v and v->u per edge).
[[nodiscard]] DiGraph to_digraph(const Graph& g);

/// Uniform random simple digraph with exactly m directed edges.
[[nodiscard]] DiGraph random_digraph(VertexId n, EdgeId m, Xoshiro256& rng);

/// Directed path 0 -> 1 -> ... -> n-1.
[[nodiscard]] DiGraph directed_path(VertexId n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
[[nodiscard]] DiGraph directed_cycle(VertexId n);

}  // namespace midas::graph
